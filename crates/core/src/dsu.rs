//! A growable union-find (disjoint-set union).
//!
//! Used twice in DISC:
//!
//! * over **cluster ids** — a merger of clusters is recorded as a single
//!   `union`, so no points need relabelling; a point's public cluster id is
//!   `find(cid)` at read time;
//! * over **MS-BFS thread slots** — when two concurrent searches meet they
//!   merge, and the epoch probe resolves stored owners through this
//!   structure.

use disc_geom::FxHashMap;

/// Union-find with path halving and union by size.
#[derive(Clone, Debug, Default)]
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    /// An empty structure.
    pub fn new() -> Self {
        Dsu::default()
    }

    /// Number of allocated slots.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no slots were allocated.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Allocates a fresh singleton set and returns its id.
    pub fn alloc(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.size.push(1);
        id
    }

    /// Representative of `x`'s set. Applies path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        debug_assert!((x as usize) < self.parent.len(), "unknown dsu slot {x}");
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Read-only find (no path compression) for use behind `&self`.
    pub fn find_immutable(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Memoised read-only find for bulk resolution behind `&self`.
    ///
    /// Caches the root of every slot on the walked chain, so resolving a
    /// whole window's labels walks each parent chain once per call instead
    /// of once per point (the compression `find` would do, without needing
    /// `&mut self`).
    pub fn find_cached(&self, x: u32, cache: &mut FxHashMap<u32, u32>) -> u32 {
        if let Some(&root) = cache.get(&x) {
            return root;
        }
        let root = self.find_immutable(x);
        let mut cur = x;
        while cur != root {
            cache.insert(cur, root);
            cur = self.parent[cur as usize];
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns the surviving root.
    /// Unions by size so chains stay flat.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        big
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// The raw parent vector (checkpoint serialization).
    pub fn parent_slice(&self) -> &[u32] {
        &self.parent
    }

    /// The raw size vector (checkpoint serialization).
    pub fn size_slice(&self) -> &[u32] {
        &self.size
    }

    /// Rebuilds a structure from serialized parent/size vectors, validating
    /// that every parent pointer is in bounds and every chain terminates at
    /// a root (no cycles) — the two properties `find` relies on for
    /// termination. Sizes are not trusted for correctness (they only bias
    /// union order), but their length must match.
    pub fn from_parts(parent: Vec<u32>, size: Vec<u32>) -> Result<Self, String> {
        if parent.len() != size.len() {
            return Err(format!(
                "parent/size length mismatch: {} vs {}",
                parent.len(),
                size.len()
            ));
        }
        for (i, &p) in parent.iter().enumerate() {
            if (p as usize) >= parent.len() {
                return Err(format!("slot {i} has out-of-bounds parent {p}"));
            }
        }
        // Cycle check in O(n): walk each chain once, marking resolved slots.
        // 0 = unvisited, 1 = on the current path, 2 = known-terminating.
        let mut state = vec![0u8; parent.len()];
        let mut path = Vec::new();
        for start in 0..parent.len() {
            if state[start] != 0 {
                continue;
            }
            let mut cur = start;
            loop {
                match state[cur] {
                    1 => return Err(format!("parent chain of slot {start} cycles at {cur}")),
                    2 => break,
                    _ => {}
                }
                state[cur] = 1;
                path.push(cur);
                let next = parent[cur] as usize;
                if next == cur {
                    break;
                }
                cur = next;
            }
            for slot in path.drain(..) {
                state[slot] = 2;
            }
        }
        Ok(Dsu { parent, size })
    }
}

impl disc_telemetry::MemoryFootprint for Dsu {
    fn footprint(&self) -> disc_telemetry::FootprintNode {
        disc_telemetry::FootprintNode::leaf(
            "dsu",
            (self.parent.capacity() + self.size.capacity()) * std::mem::size_of::<u32>(),
        )
    }
}

/// A lock-free union-find over a **fixed** element universe, safe to hammer
/// from many threads at once.
///
/// Linking is **by minimum id** (the larger root is hung under the smaller),
/// not by size: after any sequence of unions, the representative of a set is
/// its minimum member, a property of the *partition* alone. That makes the
/// final `find` answers independent of thread interleaving — the whole
/// point of this structure. The CAS loop only ever replaces a root's
/// self-parent with a strictly smaller id, so parent pointers strictly
/// decrease along every path and cycles are impossible.
///
/// Note the sequential MS-BFS replay keeps using the plain size-based
/// [`Dsu`]: its union *winner* feeds queue-concatenation order, which the
/// parallel path must reproduce bit-for-bit. `ConcurrentDsu` serves phases
/// where only the final partition matters (see `DESIGN.md` §12).
pub struct ConcurrentDsu {
    parent: Vec<std::sync::atomic::AtomicU32>,
}

impl ConcurrentDsu {
    /// A universe of `n` singleton sets `0..n`.
    pub fn new(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "universe exceeds u32 ids");
        ConcurrentDsu {
            parent: (0..n as u32)
                .map(std::sync::atomic::AtomicU32::new)
                .collect(),
        }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current root of `x`'s set — the minimum member once all concurrent
    /// unions involving the set have returned. Safe under `&self` from any
    /// thread; applies path compression opportunistically.
    pub fn find(&self, x: u32) -> u32 {
        use std::sync::atomic::Ordering::{Relaxed, SeqCst};
        let mut cur = x;
        loop {
            let p = self.parent[cur as usize].load(SeqCst);
            if p == cur {
                return cur;
            }
            let gp = self.parent[p as usize].load(SeqCst);
            // Compression: point `cur` at its grandparent. Failure is fine —
            // someone else already improved it (parents only decrease).
            let _ = self.parent[cur as usize].compare_exchange(p, gp, Relaxed, Relaxed);
            cur = gp;
        }
    }

    /// Merges the sets of `a` and `b`; returns the surviving root (their
    /// minimum). Concurrent unions on overlapping sets are linearizable.
    pub fn union(&self, a: u32, b: u32) -> u32 {
        use std::sync::atomic::Ordering::SeqCst;
        let mut a = self.find(a);
        let mut b = self.find(b);
        loop {
            if a == b {
                return a;
            }
            // Hang the larger id under the smaller.
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            match self.parent[b as usize].compare_exchange(b, a, SeqCst, SeqCst) {
                Ok(_) => return a,
                // `b` stopped being a root under our feet; chase the new
                // root and retry.
                Err(_) => b = self.find(b),
            }
        }
    }

    /// Whether `a` and `b` are currently in the same set.
    pub fn same(&self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// The final partition as a root-per-element vector (call after all
    /// worker threads have joined).
    pub fn snapshot_roots(&self) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .map(|i| self.find(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut d = Dsu::new();
        let a = d.alloc();
        let b = d.alloc();
        assert_ne!(a, b);
        assert_eq!(d.find(a), a);
        assert_eq!(d.find(b), b);
        assert!(!d.same(a, b));
    }

    #[test]
    fn union_is_transitive() {
        let mut d = Dsu::new();
        let ids: Vec<u32> = (0..6).map(|_| d.alloc()).collect();
        d.union(ids[0], ids[1]);
        d.union(ids[2], ids[3]);
        assert!(!d.same(ids[0], ids[2]));
        d.union(ids[1], ids[3]);
        assert!(d.same(ids[0], ids[2]));
        assert!(d.same(ids[0], ids[3]));
        assert!(!d.same(ids[0], ids[4]));
        // Survivor is a valid root for all four.
        let r = d.find(ids[0]);
        for &i in &ids[..4] {
            assert_eq!(d.find(i), r);
        }
    }

    #[test]
    fn immutable_find_matches_mutable() {
        let mut d = Dsu::new();
        let ids: Vec<u32> = (0..10).map(|_| d.alloc()).collect();
        for w in ids.windows(2) {
            d.union(w[0], w[1]);
        }
        let root = d.find(ids[0]);
        for &i in &ids {
            assert_eq!(d.find_immutable(i), root);
        }
    }

    #[test]
    fn cached_find_matches_and_memoises() {
        let mut d = Dsu::new();
        let ids: Vec<u32> = (0..12).map(|_| d.alloc()).collect();
        for w in ids.windows(2) {
            d.union(w[0], w[1]);
        }
        let lone = d.alloc();
        let mut cache = FxHashMap::default();
        let root = d.find_immutable(ids[0]);
        for &i in &ids {
            assert_eq!(d.find_cached(i, &mut cache), root);
        }
        assert_eq!(d.find_cached(lone, &mut cache), lone);
        // Every non-root chain slot was memoised along the way.
        for &i in &ids {
            if i != root {
                assert_eq!(cache.get(&i), Some(&root));
            }
        }
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let mut d = Dsu::new();
        let ids: Vec<u32> = (0..8).map(|_| d.alloc()).collect();
        d.union(ids[0], ids[1]);
        d.union(ids[2], ids[3]);
        d.union(ids[1], ids[3]);
        let mut back = Dsu::from_parts(d.parent_slice().to_vec(), d.size_slice().to_vec()).unwrap();
        for &i in &ids {
            assert_eq!(back.find(i), d.find(i));
        }

        // Length mismatch, out-of-bounds parent, and cycles are rejected.
        assert!(Dsu::from_parts(vec![0, 1], vec![1]).is_err());
        assert!(Dsu::from_parts(vec![0, 9], vec![1, 1]).is_err());
        let err = Dsu::from_parts(vec![1, 0], vec![1, 1]).unwrap_err();
        assert!(err.contains("cycles"), "got: {err}");
        assert!(Dsu::from_parts(vec![1, 2, 0], vec![1, 1, 1]).is_err());
        assert!(Dsu::from_parts(Vec::new(), Vec::new()).is_ok());
    }

    #[test]
    fn union_returns_surviving_root() {
        let mut d = Dsu::new();
        let a = d.alloc();
        let b = d.alloc();
        let c = d.alloc();
        let r1 = d.union(a, b);
        let r2 = d.union(r1, c);
        assert_eq!(d.find(a), r2);
        assert_eq!(d.find(c), r2);
    }

    #[test]
    fn concurrent_dsu_basics() {
        let d = ConcurrentDsu::new(6);
        assert_eq!(d.len(), 6);
        assert!(!d.is_empty());
        assert!(ConcurrentDsu::new(0).is_empty());
        assert_eq!(d.union(4, 2), 2);
        assert_eq!(d.union(5, 4), 2);
        // Representative is always the minimum member.
        assert_eq!(d.union(3, 5), 2);
        assert!(d.same(3, 4));
        assert!(!d.same(0, 2));
        assert_eq!(d.find(5), 2);
        assert_eq!(d.snapshot_roots(), vec![0, 1, 2, 2, 2, 2]);
    }

    /// Satellite (c): many threads hammering `union`/`find` over a shared
    /// edge list must land on exactly the partition a sequential replay of
    /// the same edges produces — representatives and all (min-id linking
    /// makes the representative a property of the partition alone).
    #[test]
    fn concurrent_dsu_stress_matches_sequential_replay() {
        const N: usize = 2048;
        const THREADS: usize = 8;
        const ROUNDS: usize = 4;
        // Deterministic pseudo-random edges (splitmix-style), plus chains
        // that force long merge cascades across thread boundaries.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut s: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..4096 {
            s = s.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
            let a = (s >> 33) as u32 % N as u32;
            let b = (s >> 11) as u32 % N as u32;
            edges.push((a, b));
        }
        for i in 0..(N as u32 - 1) / 3 {
            edges.push((3 * i, 3 * i + 3));
        }

        // Sequential oracle: min-member representative per element.
        let mut seq = Dsu::new();
        for _ in 0..N {
            seq.alloc();
        }
        for &(a, b) in &edges {
            seq.union(a, b);
        }
        let mut min_member = vec![u32::MAX; N];
        for i in 0..N as u32 {
            let r = seq.find(i) as usize;
            min_member[r] = min_member[r].min(i);
        }
        let oracle: Vec<u32> = (0..N as u32)
            .map(|i| min_member[seq.find(i) as usize])
            .collect();

        for round in 0..ROUNDS {
            let conc = ConcurrentDsu::new(N);
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    // Each worker processes an interleaved slice, rotated per
                    // round so contention patterns vary between rounds.
                    let edges = &edges;
                    let conc = &conc;
                    scope.spawn(move || {
                        for (i, &(a, b)) in edges.iter().enumerate() {
                            if (i + round) % THREADS == t {
                                conc.union(a, b);
                            }
                            // Interleave finds to exercise compression races.
                            conc.find(((i as u32) * 7 + t as u32) % N as u32);
                        }
                    });
                }
            });
            assert_eq!(conc.snapshot_roots(), oracle, "round {round} diverged");
        }
    }
}
