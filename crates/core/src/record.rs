//! Per-point state of the current window.

use crate::label::ClusterId;
use disc_geom::{Point, PointId};

/// Everything DISC tracks about one point.
///
/// Core status is *derived*: a point is a core of the current window iff it
/// is still in the window and `n_eps >= tau`. `prev_core` freezes that
/// predicate as of the end of the previous slide, which is what the
/// ex-core / neo-core definitions (Defs. 1–2) compare against.
#[derive(Clone, Copy, Debug)]
pub struct PointRecord<const D: usize> {
    /// Spatial location.
    pub point: Point<D>,
    /// Self-inclusive ε-neighbour count `n_ε(p)`.
    pub n_eps: u32,
    /// Whether the point is in the current window. Ex-cores of `Δout` keep
    /// a record (and their R-tree entry) with `in_window = false` until the
    /// ex-core phase is done — the paper's `C_out` set.
    pub in_window: bool,
    /// Core status at the end of the previous slide.
    pub prev_core: bool,
    /// Raw cluster id, meaningful while the point is a core. Resolve
    /// through the cluster DSU for the canonical id.
    pub cid: ClusterId,
    /// For non-core points: a core within ε whose cluster this point
    /// borders. `None` means noise (or not yet resolved during a slide).
    pub adopter: Option<PointId>,
}

/// The non-spatial half of a [`PointRecord`].
///
/// The window store keeps coordinates in struct-of-arrays columns (see
/// `disc_geom::soa`) and the algorithmic state in a parallel `PointMeta`
/// column; `PointRecord` is the assembled-on-read AoS *view* the engine
/// APIs keep exposing. Mutation paths go straight at the meta column — the
/// hot loops of COLLECT/CLUSTER never rewrite coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PointMeta {
    /// Self-inclusive ε-neighbour count `n_ε(p)`.
    pub n_eps: u32,
    /// Whether the point is in the current window (`C_out` ghosts: false).
    pub in_window: bool,
    /// Core status at the end of the previous slide.
    pub prev_core: bool,
    /// Raw cluster id; resolve through the cluster DSU.
    pub cid: ClusterId,
    /// Adopting core for non-core points; `None` = noise/unresolved.
    pub adopter: Option<PointId>,
}

impl PointMeta {
    /// Fresh meta for a point entering the window.
    pub fn new() -> Self {
        PointMeta {
            n_eps: 1, // the point itself
            in_window: true,
            prev_core: false,
            cid: ClusterId(u32::MAX),
            adopter: None,
        }
    }

    /// Core predicate for the *current* window given τ.
    #[inline]
    pub fn is_core(&self, tau: usize) -> bool {
        self.in_window && self.n_eps as usize >= tau
    }

    /// "Core in both windows" — the membership test of `M⁻`/`M⁺`.
    #[inline]
    pub fn core_in_both(&self, tau: usize) -> bool {
        self.prev_core && self.is_core(tau)
    }

    /// Ex-core predicate (Def. 1).
    #[inline]
    pub fn is_ex_core(&self, tau: usize) -> bool {
        self.prev_core && !self.is_core(tau)
    }

    /// Neo-core predicate (Def. 2).
    #[inline]
    pub fn is_neo_core(&self, tau: usize) -> bool {
        !self.prev_core && self.is_core(tau)
    }
}

impl Default for PointMeta {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> PointRecord<D> {
    /// Fresh record for a point entering the window.
    pub fn new(point: Point<D>) -> Self {
        Self::from_parts(point, PointMeta::new())
    }

    /// Assembles the AoS view from a coordinate and its meta column entry.
    #[inline]
    pub fn from_parts(point: Point<D>, meta: PointMeta) -> Self {
        PointRecord {
            point,
            n_eps: meta.n_eps,
            in_window: meta.in_window,
            prev_core: meta.prev_core,
            cid: meta.cid,
            adopter: meta.adopter,
        }
    }

    /// The non-spatial half, column-ready.
    #[inline]
    pub fn meta(&self) -> PointMeta {
        PointMeta {
            n_eps: self.n_eps,
            in_window: self.in_window,
            prev_core: self.prev_core,
            cid: self.cid,
            adopter: self.adopter,
        }
    }

    /// Core predicate for the *current* window given τ.
    #[inline]
    pub fn is_core(&self, tau: usize) -> bool {
        self.in_window && self.n_eps as usize >= tau
    }

    /// "Core in both windows" — the membership test of `M⁻`/`M⁺`
    /// (Defs. 4 and 6).
    #[inline]
    pub fn core_in_both(&self, tau: usize) -> bool {
        self.prev_core && self.is_core(tau)
    }

    /// Ex-core predicate (Def. 1): was a core, and either left the window
    /// or is no longer a core.
    #[inline]
    pub fn is_ex_core(&self, tau: usize) -> bool {
        self.prev_core && !self.is_core(tau)
    }

    /// Neo-core predicate (Def. 2): is a core now but was not one before.
    #[inline]
    pub fn is_neo_core(&self, tau: usize) -> bool {
        !self.prev_core && self.is_core(tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_record_counts_itself() {
        let r: PointRecord<2> = PointRecord::new(Point::new([0.0, 0.0]));
        assert_eq!(r.n_eps, 1);
        assert!(r.in_window);
        assert!(!r.prev_core);
        assert!(r.is_neo_core(1), "tau=1 makes every point a core");
        assert!(!r.is_neo_core(2));
    }

    #[test]
    fn predicates_cover_the_status_matrix() {
        let mut r: PointRecord<2> = PointRecord::new(Point::new([0.0, 0.0]));
        r.n_eps = 5;
        r.prev_core = true;
        assert!(r.core_in_both(5));
        assert!(!r.is_ex_core(5));
        assert!(!r.is_neo_core(5));

        r.n_eps = 4; // lost density
        assert!(r.is_ex_core(5));
        assert!(!r.core_in_both(5));

        r.n_eps = 5;
        r.in_window = false; // left the window
        assert!(r.is_ex_core(5));

        r.in_window = true;
        r.prev_core = false; // gained status
        assert!(r.is_neo_core(5));
    }
}
