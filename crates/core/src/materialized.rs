//! The materialised-graph strawman (paper §IV, first paragraph).
//!
//! > "Note that range searches against the R-tree index could be avoided
//! > entirely if the ε-neighbor relations between cores were materialized
//! > in a graph. Then the reachability checks could be done more quickly by
//! > traversing the materialized graph. However, we choose not to do that
//! > because the O(n²) cost of maintaining a materialized graph can be too
//! > high."
//!
//! This module implements exactly that rejected design so the trade-off is
//! measurable: [`GraphDisc`] produces the same DBSCAN-equivalent clustering
//! as [`Disc`], but keeps every point's ε-adjacency list materialised. One
//! range search per *arrival* discovers the new edges (departures walk the
//! lists); every connectivity check and every label resolution is a pure
//! graph traversal with zero index probes. The price is Θ(Σ deg) memory and
//! Θ(deg) list surgery per update — the quadratic blow-up the paper warns
//! about materialises as soon as ε grows or data densifies (see the
//! `graph_ablation` experiment).
//!
//! [`Disc`]: crate::Disc

use crate::config::DiscConfig;
use crate::dsu::Dsu;
use crate::label::{ClusterId, PointLabel};
use disc_geom::{FxHashMap, FxHashSet, Point, PointId};
use disc_index::{RTree, SpatialBackend};
use disc_window::SlideBatch;
use std::collections::VecDeque;

struct Vertex<const D: usize> {
    point: Point<D>,
    /// Materialised ε-adjacency (live points only; maintained eagerly).
    neigh: Vec<PointId>,
    /// Raw cluster id while a core (resolve through the DSU).
    cid: ClusterId,
    prev_core: bool,
}

impl<const D: usize> Vertex<D> {
    fn n_eps(&self) -> usize {
        self.neigh.len() + 1 // self-inclusive
    }
}

/// DISC on a materialised ε-graph: identical output, different costs.
///
/// Like [`Disc`](crate::Disc), generic over the arrival-discovery index
/// with the R-tree as the default.
pub struct GraphDisc<const D: usize, B: SpatialBackend<D> = RTree<D>> {
    cfg: DiscConfig,
    vertices: FxHashMap<PointId, Vertex<D>>,
    /// Index used ONLY to discover a newcomer's neighbourhood (one search
    /// per arrival). All other work is graph traversal.
    tree: B,
    clusters: Dsu,
    /// Telemetry destination (no-op by default; see [`set_recorder`]).
    ///
    /// [`set_recorder`]: GraphDisc::set_recorder
    recorder: disc_telemetry::SharedRecorder,
    slide_seq: u64,
    /// Span tracer (disabled by default). Spans: `slide → departures /
    /// arrivals / splits / merges` — coarser than [`Disc`](crate::Disc)'s
    /// tree because there are no search phases to attribute.
    tracer: disc_telemetry::Tracer,
    /// Provenance buffered during `apply`, published once the slide is
    /// done. GraphDisc resolves border labels lazily, so it emits no
    /// `adoption` events; everything else matches `Disc`'s vocabulary.
    prov: Vec<disc_telemetry::ProvenanceEvent>,
    prov_on: bool,
}

impl<const D: usize> GraphDisc<D> {
    /// Creates an engine with an empty window over the default R-tree
    /// backend (same inference rationale as [`Disc::new`](crate::Disc::new)).
    pub fn new(cfg: DiscConfig) -> Self {
        GraphDisc::with_index(cfg)
    }
}

impl<const D: usize, B: SpatialBackend<D>> GraphDisc<D, B> {
    /// Creates an engine with an empty window over backend `B`.
    pub fn with_index(cfg: DiscConfig) -> Self {
        GraphDisc {
            cfg,
            vertices: FxHashMap::default(),
            tree: B::with_eps_hint(cfg.eps),
            clusters: Dsu::new(),
            recorder: disc_telemetry::noop(),
            slide_seq: 0,
            tracer: disc_telemetry::Tracer::disabled(),
            prov: Vec::new(),
            prov_on: false,
        }
    }

    /// Builder-style [`set_tracer`](GraphDisc::set_tracer).
    pub fn with_tracer(mut self, tracer: disc_telemetry::Tracer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// Installs a span tracer (see [`Disc::set_tracer`](crate::Disc::set_tracer)).
    pub fn set_tracer(&mut self, tracer: disc_telemetry::Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer.
    pub fn tracer(&self) -> &disc_telemetry::Tracer {
        &self.tracer
    }

    /// Takes all spans recorded so far; ids stay unique across drains.
    pub fn drain_spans(&mut self) -> Vec<disc_telemetry::SpanRecord> {
        self.tracer.drain()
    }

    #[inline]
    fn emit_prov(&mut self, kind: disc_telemetry::ProvenanceKind) {
        if self.prov_on {
            self.prov.push(disc_telemetry::ProvenanceEvent {
                slide: self.slide_seq + 1,
                kind,
            });
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DiscConfig {
        &self.cfg
    }

    /// Builder-style [`set_recorder`](GraphDisc::set_recorder).
    pub fn with_recorder(mut self, recorder: disc_telemetry::SharedRecorder) -> Self {
        self.set_recorder(recorder);
        self
    }

    /// Routes this engine's telemetry to `recorder`. GraphDisc keeps no
    /// per-phase breakdown (the whole point is that there *are* no search
    /// phases) — it publishes whole-slide latency, the mutation counters,
    /// and the index counters of its arrival-discovery searches.
    pub fn set_recorder(&mut self, recorder: disc_telemetry::SharedRecorder) {
        self.recorder = recorder;
    }

    /// Number of points in the current window.
    pub fn window_len(&self) -> usize {
        self.vertices.len()
    }

    /// Total ε-range searches executed (exactly one per arrival).
    pub fn range_searches(&self) -> u64 {
        self.tree.stats().range_searches
    }

    /// Materialised-graph memory estimate in bytes — the quantity the
    /// paper's O(n²) warning is about. The footprint total over the vertex
    /// table, adjacency lists, index and DSU.
    pub fn memory_bytes(&self) -> usize {
        use disc_telemetry::MemoryFootprint;
        self.mem_bytes() as usize
    }

    fn is_core(&self, v: &Vertex<D>) -> bool {
        v.n_eps() >= self.cfg.tau
    }

    /// Advances the window by one slide; same contract as [`Disc::apply`].
    ///
    /// [`Disc::apply`]: crate::Disc::apply
    pub fn apply(&mut self, batch: &SlideBatch<D>) {
        let eps = self.cfg.eps;
        let start = std::time::Instant::now();
        let index_before = *self.tree.stats();
        self.prov.clear();
        self.prov_on = self.recorder.enabled();
        let sp_slide = self.tracer.begin("slide");

        // --- Departures: pure list surgery -------------------------------
        let sp = self.tracer.begin("departures");
        let mut ex_cores: Vec<PointId> = Vec::new();
        let mut touched: FxHashSet<PointId> = FxHashSet::default();
        for (id, _) in &batch.outgoing {
            let v = self
                .vertices
                .remove(id)
                .unwrap_or_else(|| panic!("outgoing {id} not in window"));
            self.tree.remove(*id, v.point);
            if v.prev_core {
                ex_cores.push(*id); // its neighbours keep the record below
            }
            for q in &v.neigh {
                if let Some(qv) = self.vertices.get_mut(q) {
                    // Θ(deg) removal — the maintenance cost in question.
                    if let Some(pos) = qv.neigh.iter().position(|x| x == id) {
                        qv.neigh.swap_remove(pos);
                    }
                    touched.insert(*q);
                }
            }
        }

        self.tracer
            .end_with_args(sp, &[("outgoing", batch.outgoing.len() as u64)]);

        // --- Arrivals: one range search each ------------------------------
        let sp = self.tracer.begin("arrivals");
        for (id, point) in &batch.incoming {
            self.tree.insert(*id, *point);
            let mut neigh: Vec<PointId> = Vec::new();
            let me = *id;
            self.tree.for_each_in_ball(point, eps, |q, _| {
                if q != me {
                    neigh.push(q);
                }
            });
            for q in &neigh {
                self.vertices
                    .get_mut(q)
                    .expect("indexed point missing")
                    .neigh
                    .push(me);
                touched.insert(*q);
            }
            self.vertices.insert(
                me,
                Vertex {
                    point: *point,
                    neigh,
                    cid: ClusterId(u32::MAX),
                    prev_core: false,
                },
            );
            touched.insert(me);
        }

        self.tracer
            .end_with_args(sp, &[("incoming", batch.incoming.len() as u64)]);

        // --- Classification ------------------------------------------------
        // Ghost ex-cores are gone from the graph; in-window ex-cores and
        // neo-cores come from the touched set.
        let mut neo_cores: Vec<PointId> = Vec::new();
        touched.retain(|id| self.vertices.contains_key(id));
        for id in &touched {
            let v = &self.vertices[id];
            let core = self.is_core(v);
            if v.prev_core && !core {
                ex_cores.push(*id);
            } else if !v.prev_core && core {
                neo_cores.push(*id);
            }
        }
        if self.prov_on {
            for ex in &ex_cores {
                let id = ex.0;
                self.emit_prov(disc_telemetry::ProvenanceKind::ExCoreDetected { id });
            }
            for neo in &neo_cores {
                let id = neo.0;
                self.emit_prov(disc_telemetry::ProvenanceKind::NeoCoreDetected { id });
            }
        }

        // --- Splits: graph connectivity over bonding cores ----------------
        // With the graph materialised, M⁻ is just the surviving-core
        // neighbours of each ex-core region and the check is a plain BFS.
        let mut affected: FxHashSet<PointId> = FxHashSet::default();
        for ex in &ex_cores {
            match self.vertices.get(ex) {
                Some(v) => {
                    for q in &v.neigh {
                        let qv = &self.vertices[q];
                        if qv.prev_core && self.is_core(qv) {
                            affected.insert(*q);
                        }
                    }
                }
                None => {
                    // Departed ex-core: its old neighbours were all touched;
                    // collect surviving cores among them.
                    // (Handled below via the touched set.)
                }
            }
        }
        for id in &touched {
            let v = &self.vertices[id];
            if v.prev_core && self.is_core(v) {
                affected.insert(*id);
            }
        }

        // Group the affected bonding cores by previous cluster and check
        // each group's connectedness with one multi-source BFS over the
        // materialised graph.
        let sp = self.tracer.begin("splits");
        let mut by_root: FxHashMap<u32, Vec<PointId>> = FxHashMap::default();
        for id in affected {
            let root = self.clusters.find(self.vertices[&id].cid.0);
            by_root.entry(root).or_default().push(id);
        }
        for (root, starters) in by_root {
            if starters.len() < 2 {
                continue;
            }
            self.recheck_group(root, &starters);
        }
        self.tracer.end(sp);

        // --- Merges / emergence over neo-cores ----------------------------
        let sp = self.tracer.begin("merges");
        let mut pending: FxHashSet<PointId> = neo_cores.iter().copied().collect();
        while let Some(&seed) = pending.iter().next() {
            pending.remove(&seed);
            // Gather the nascent-reachable class by graph BFS.
            let mut class = vec![seed];
            let mut queue = VecDeque::from([seed]);
            let mut m_roots: Vec<u32> = Vec::new();
            while let Some(r) = queue.pop_front() {
                let v = &self.vertices[&r];
                let neighbours = v.neigh.clone();
                for q in neighbours {
                    let qv = &self.vertices[&q];
                    if !self.is_core(qv) {
                        continue;
                    }
                    if !qv.prev_core {
                        if pending.remove(&q) {
                            class.push(q);
                            queue.push_back(q);
                        }
                    } else {
                        m_roots.push(self.clusters.find(qv.cid.0));
                    }
                }
            }
            let assigned = if m_roots.is_empty() {
                let fresh = ClusterId(self.clusters.alloc());
                self.emit_prov(disc_telemetry::ProvenanceKind::ClusterEmerged {
                    cluster: fresh.0 as u64,
                    rep: seed.0,
                    size: class.len() as u64,
                });
                fresh
            } else {
                let mut root = self.clusters.find(m_roots[0]);
                let mut distinct = 1u64;
                for &r in &m_roots[1..] {
                    let rr = self.clusters.find(r);
                    if rr != root {
                        distinct += 1;
                        root = self.clusters.union(root, rr);
                    }
                }
                if distinct > 1 {
                    self.emit_prov(disc_telemetry::ProvenanceKind::ClusterMerge {
                        winner: root as u64,
                        merged: distinct,
                        rep: seed.0,
                    });
                }
                ClusterId(root)
            };
            for id in class {
                self.vertices.get_mut(&id).expect("neo vanished").cid = assigned;
            }
        }
        self.tracer.end(sp);

        // --- Freeze core status -------------------------------------------
        for id in touched {
            let core = self.is_core(&self.vertices[&id]);
            self.vertices
                .get_mut(&id)
                .expect("touched vanished")
                .prev_core = core;
        }

        self.slide_seq += 1;
        self.tracer
            .end_with_args(sp_slide, &[("seq", self.slide_seq)]);
        if self.recorder.enabled() {
            use disc_telemetry::MemoryFootprint;
            let fp = self.footprint();
            let mem_bytes = fp.total();
            for (component, bytes) in fp.flatten() {
                self.recorder.gauge_set_labeled(
                    "disc_mem_bytes",
                    "component",
                    &component,
                    bytes as f64,
                );
            }
            if let Some(rss) = disc_telemetry::rss_bytes() {
                self.recorder.gauge_set("disc_rss_bytes", rss as f64);
            }
            // Census gauges for the health layer, gated like the footprint
            // walk so an uninstrumented engine never pays for them.
            let (core, border, noise) = self.census();
            self.recorder.gauge_set("disc_core_points", core as f64);
            self.recorder.gauge_set("disc_border_points", border as f64);
            self.recorder.gauge_set("disc_noise_points", noise as f64);
            self.recorder
                .gauge_set("disc_cluster_count", self.num_clusters() as f64);
            let rec = self.recorder.as_ref();
            let elapsed = start.elapsed();
            rec.counter_add("disc_slides_total", 1);
            rec.counter_add("disc_points_inserted_total", batch.incoming.len() as u64);
            rec.counter_add("disc_points_removed_total", batch.outgoing.len() as u64);
            rec.record_duration("disc_slide_seconds", elapsed);
            rec.gauge_set("disc_window_points", self.vertices.len() as f64);
            let index = self.tree.stats().since(&index_before);
            index.publish_to(rec);
            rec.emit(&disc_telemetry::SlideEvent {
                seq: self.slide_seq,
                engine: "graphdisc",
                backend: B::NAME,
                window_len: self.vertices.len(),
                inserted: batch.incoming.len(),
                removed: batch.outgoing.len(),
                total_ns: elapsed.as_nanos() as u64,
                range_searches: index.range_searches,
                epoch_probes: index.epoch_probes,
                nodes_visited: index.nodes_visited,
                distance_checks: index.distance_checks,
                subtrees_pruned: index.subtrees_pruned,
                mem_bytes,
                ..disc_telemetry::SlideEvent::default()
            });
            for ev in self.prov.drain(..) {
                rec.emit_provenance(&ev);
            }
        }
    }

    /// Re-derives the components of a bonding-core group by multi-source
    /// BFS over the graph; detached components get fresh ids. `root` is the
    /// group's previous cluster, named in the split provenance.
    fn recheck_group(&mut self, root: u32, starters: &[PointId]) {
        let mut comp_of: FxHashMap<PointId, usize> = FxHashMap::default();
        let mut comps: Vec<Vec<PointId>> = Vec::new();
        for &s in starters {
            if comp_of.contains_key(&s) {
                continue;
            }
            let idx = comps.len();
            let mut comp = vec![s];
            comp_of.insert(s, idx);
            let mut queue = VecDeque::from([s]);
            while let Some(r) = queue.pop_front() {
                let neighbours = self.vertices[&r].neigh.clone();
                for q in neighbours {
                    if comp_of.contains_key(&q) {
                        continue;
                    }
                    let qv = &self.vertices[&q];
                    if self.is_core(qv) {
                        comp_of.insert(q, idx);
                        comp.push(q);
                        queue.push_back(q);
                    }
                }
            }
            comps.push(comp);
        }
        // First component keeps the old id, the rest get fresh ids.
        if comps.len() > 1 {
            self.emit_prov(disc_telemetry::ProvenanceKind::ClusterSplit {
                old: root as u64,
                parts: comps.len() as u64,
                rep: comps[0][0].0,
            });
        }
        for comp in comps.iter().skip(1) {
            let fresh = ClusterId(self.clusters.alloc());
            for id in comp {
                self.vertices.get_mut(id).expect("core vanished").cid = fresh;
            }
        }
    }

    /// `(id, cluster)` assignments sorted by arrival id, `-1` for noise.
    pub fn assignments(&self) -> Vec<(PointId, i64)> {
        let tau = self.cfg.tau;
        let mut out: Vec<(PointId, i64)> = self
            .vertices
            .iter()
            .map(|(id, v)| {
                let label = if v.n_eps() >= tau {
                    self.clusters.find_immutable(v.cid.0) as i64
                } else {
                    // Border: any core neighbour adopts (graph lookup, no
                    // searches).
                    v.neigh
                        .iter()
                        .find(|q| {
                            let qv = &self.vertices[q];
                            qv.n_eps() >= tau
                        })
                        .map(|q| self.clusters.find_immutable(self.vertices[q].cid.0) as i64)
                        .unwrap_or(-1)
                };
                (*id, label)
            })
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// The label of one window point.
    pub fn label_of(&self, id: PointId) -> Option<PointLabel> {
        let v = self.vertices.get(&id)?;
        let tau = self.cfg.tau;
        if v.n_eps() >= tau {
            return Some(PointLabel::Core(ClusterId(
                self.clusters.find_immutable(v.cid.0),
            )));
        }
        for q in &v.neigh {
            let qv = &self.vertices[q];
            if qv.n_eps() >= tau {
                return Some(PointLabel::Border(ClusterId(
                    self.clusters.find_immutable(qv.cid.0),
                )));
            }
        }
        Some(PointLabel::Noise)
    }

    /// Number of distinct clusters.
    pub fn num_clusters(&self) -> usize {
        let tau = self.cfg.tau;
        let mut roots: FxHashSet<u32> = FxHashSet::default();
        for v in self.vertices.values() {
            if v.n_eps() >= tau {
                roots.insert(self.clusters.find_immutable(v.cid.0));
            }
        }
        roots.len()
    }

    /// `(core, border, noise)` counts over the window — O(window) via the
    /// materialised adjacency, no searches.
    pub fn census(&self) -> (usize, usize, usize) {
        let tau = self.cfg.tau;
        let (mut core, mut border, mut noise) = (0, 0, 0);
        for v in self.vertices.values() {
            if v.n_eps() >= tau {
                core += 1;
            } else if v.neigh.iter().any(|q| self.vertices[q].n_eps() >= tau) {
                border += 1;
            } else {
                noise += 1;
            }
        }
        (core, border, noise)
    }
}

impl<const D: usize, B: SpatialBackend<D>> disc_telemetry::MemoryFootprint for GraphDisc<D, B> {
    /// The materialised graph's bytes: the vertex table, the adjacency
    /// lists (the component the paper's O(n²) warning targets), and the
    /// shared index + DSU. Decomposed so the `disc_mem_bytes` gauges show
    /// the adjacency blow-up as its own line.
    fn footprint(&self) -> disc_telemetry::FootprintNode {
        use disc_telemetry::{map_bytes, FootprintNode};
        let table = map_bytes(
            self.vertices.capacity(),
            std::mem::size_of::<(PointId, Vertex<D>)>(),
        );
        let adjacency: usize = self
            .vertices
            .values()
            .map(|v| v.neigh.capacity() * std::mem::size_of::<PointId>())
            .sum();
        FootprintNode::branch(
            "graph",
            vec![
                FootprintNode::leaf("vertices", table),
                FootprintNode::leaf("adjacency", adjacency),
                self.tree.footprint(),
                self.clusters.footprint(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Disc, DiscConfig};
    use disc_metrics::ari;
    use disc_window::{datasets, SlidingWindow};

    fn agree(
        records: Vec<disc_window::Record<2>>,
        window: usize,
        stride: usize,
        eps: f64,
        tau: usize,
    ) {
        let mut w = SlidingWindow::new(records, window, stride);
        let mut graph = GraphDisc::new(DiscConfig::new(eps, tau));
        let mut disc = Disc::new(DiscConfig::new(eps, tau));
        let fill = w.fill();
        graph.apply(&fill);
        disc.apply(&fill);
        loop {
            let a: Vec<i64> = graph.assignments().into_iter().map(|(_, l)| l).collect();
            let b: Vec<i64> = disc.assignments().into_iter().map(|(_, l)| l).collect();
            // Core partitions identical ⇒ ARI over non-noise flags must be
            // 1.0 when borders are unambiguous; tolerate border flips by
            // checking noise agreement plus cluster-count equality plus a
            // very high ARI.
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(*x < 0, *y < 0, "noise flag diverged");
            }
            let ca: std::collections::HashSet<i64> =
                a.iter().copied().filter(|&l| l >= 0).collect();
            let cb: std::collections::HashSet<i64> =
                b.iter().copied().filter(|&l| l >= 0).collect();
            assert_eq!(ca.len(), cb.len(), "cluster count diverged");
            assert!(ari(&a, &b) > 0.999, "partitions diverged: {}", ari(&a, &b));
            match w.advance() {
                Some(batch) => {
                    graph.apply(&batch);
                    disc.apply(&batch);
                }
                None => break,
            }
        }
    }

    #[test]
    fn matches_disc_on_maze() {
        agree(datasets::maze(1500, 10, 3), 400, 80, 0.6, 5);
    }

    #[test]
    fn matches_disc_on_noisy_covid() {
        agree(datasets::covid_like(1200, 11), 400, 100, 1.2, 5);
    }

    #[test]
    fn matches_disc_on_blobs_full_turnover() {
        agree(
            datasets::gaussian_blobs::<2>(900, 3, 0.6, 9),
            300,
            300,
            1.0,
            5,
        );
    }

    #[test]
    fn traces_and_provenance_mirror_disc_vocabulary() {
        use disc_geom::Point;
        use disc_telemetry::{
            MemoryProvenanceSink, ProvenanceKind, ProvenanceSink, Registry, Tracer,
        };
        use std::sync::Arc;

        let sink = Arc::new(MemoryProvenanceSink::new());
        struct Fwd(Arc<MemoryProvenanceSink>);
        impl ProvenanceSink for Fwd {
            fn emit(&self, ev: &disc_telemetry::ProvenanceEvent) {
                self.0.emit(ev);
            }
        }
        let reg = Arc::new(Registry::new().with_provenance(Box::new(Fwd(sink.clone()))));
        let mut g: GraphDisc<2> = GraphDisc::new(DiscConfig::new(0.6, 3))
            .with_recorder(reg.clone())
            .with_tracer(Tracer::new());
        let line = SlideBatch {
            incoming: (0..9u64)
                .map(|i| (PointId(i), Point::new([i as f64 * 0.5, 0.0])))
                .collect(),
            outgoing: vec![],
        };
        g.apply(&line);
        let cut = SlideBatch {
            incoming: vec![],
            outgoing: vec![(PointId(4), Point::new([2.0, 0.0]))],
        };
        g.apply(&cut);

        let spans = g.drain_spans();
        for name in ["slide", "departures", "arrivals", "splits", "merges"] {
            assert!(spans.iter().any(|s| s.name == name), "missing {name}");
        }
        disc_telemetry::validate_chrome_trace(&disc_telemetry::chrome_trace_json(&spans)).unwrap();

        let evs = sink.events();
        assert!(evs
            .iter()
            .any(|e| e.slide == 1 && matches!(e.kind, ProvenanceKind::ClusterEmerged { .. })));
        assert!(evs
            .iter()
            .any(|e| e.slide == 2 && matches!(e.kind, ProvenanceKind::ExCoreDetected { id: 4 })));
        assert!(evs.iter().any(
            |e| e.slide == 2 && matches!(e.kind, ProvenanceKind::ClusterSplit { parts: 2, .. })
        ));
        for e in &evs {
            disc_telemetry::ProvenanceEvent::validate_jsonl(&e.to_jsonl()).unwrap();
        }
    }

    #[test]
    fn one_search_per_arrival() {
        let recs = datasets::gaussian_blobs::<2>(600, 3, 0.5, 5);
        let n = recs.len() as u64;
        let mut w = SlidingWindow::new(recs, 200, 50);
        let mut g = GraphDisc::new(DiscConfig::new(1.0, 4));
        g.apply(&w.fill());
        while let Some(b) = w.advance() {
            g.apply(&b);
        }
        assert_eq!(g.range_searches(), n);
    }

    #[test]
    fn memory_scales_with_density() {
        // Same points, two ε values: the materialised graph's memory grows
        // with the neighbourhood size — the paper's O(n²) concern.
        let recs = datasets::gaussian_blobs::<2>(800, 1, 1.0, 7);
        let mem_at = |eps: f64| {
            let mut w = SlidingWindow::new(recs.clone(), 800, 800);
            let mut g = GraphDisc::new(DiscConfig::new(eps, 4));
            g.apply(&w.fill());
            g.memory_bytes()
        };
        let sparse = mem_at(0.2);
        let dense = mem_at(4.0);
        assert!(
            dense > sparse * 5,
            "denser ε must inflate the graph: {dense} vs {sparse}"
        );
    }
}
