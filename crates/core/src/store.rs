//! A ring-buffer point store over struct-of-arrays columns.
//!
//! Under the count-based sliding window, live point ids always fall in a
//! span of at most `window + stride` consecutive arrival indices (window
//! contents plus the in-flight slide's ghosts). That makes a hash map
//! needlessly slow for the per-neighbour lookups on DISC's hot paths: this
//! store maps `id → slot = id mod capacity`, giving O(1) array access with
//! no hashing. Capacity doubles transparently if a slide ever widens the
//! live span (e.g. a first window smaller than later strides).
//!
//! Storage is split columnar (see [`disc_geom::soa`]): coordinates live in
//! one contiguous `Vec<f64>` per dimension (the id column doubles as the
//! occupancy map, [`EMPTY_ROW`] marking free slots), and the algorithmic
//! per-point state lives in a parallel [`PointMeta`] column. Reads
//! reassemble the familiar [`PointRecord`] *view* by value — `PointRecord`
//! is `Copy` and two cache lines wide, so the view costs no more than the
//! old `&PointRecord` double-indirection did — while mutation goes through
//! [`get_mut`](PointStore::get_mut) straight at the meta column without
//! touching coordinates.

use crate::record::{PointMeta, PointRecord};
use disc_geom::soa::{PointStore as SoaColumns, EMPTY_ROW};
use disc_geom::{Point, PointId};

/// Dense id-indexed storage for the window's [`PointRecord`]s.
#[derive(Clone, Debug)]
pub struct PointStore<const D: usize> {
    /// Coordinate + id columns; `ids[slot] == EMPTY_ROW` marks a free slot
    /// (the tick column carries the raw id for diagnostics).
    coords: SoaColumns<D>,
    /// Algorithmic state, parallel to the coordinate rows.
    meta: Vec<PointMeta>,
    len: usize,
}

impl<const D: usize> Default for PointStore<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> PointStore<D> {
    /// An empty store.
    pub fn new() -> Self {
        let mut coords = SoaColumns::new();
        coords.resize_rows(1024);
        PointStore {
            coords,
            meta: vec![PointMeta::new(); 1024],
            len: 0,
        }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot(&self, id: PointId) -> usize {
        (id.raw() as usize) & (self.coords.len() - 1)
    }

    #[inline]
    fn slot_of(&self, id: PointId) -> Option<usize> {
        let slot = self.slot(id);
        (self.coords.id_at(slot) == id.raw()).then_some(slot)
    }

    /// Read access (assembled by value); `None` if `id` is not stored.
    #[inline]
    pub fn get(&self, id: PointId) -> Option<PointRecord<D>> {
        let slot = self.slot_of(id)?;
        Some(PointRecord::from_parts(
            self.coords.point_at(slot),
            self.meta[slot],
        ))
    }

    /// Mutable access to the algorithmic state; `None` if `id` is not
    /// stored. Coordinates are immutable once inserted.
    #[inline]
    pub fn get_mut(&mut self, id: PointId) -> Option<&mut PointMeta> {
        let slot = self.slot_of(id)?;
        Some(&mut self.meta[slot])
    }

    /// Read access that panics on a missing id (hot-path `[]` analogue).
    #[inline]
    pub fn at(&self, id: PointId) -> PointRecord<D> {
        self.get(id)
            .unwrap_or_else(|| panic!("point {id} not in the store"))
    }

    /// Coordinate-only read, skipping meta assembly (hot-path helper for
    /// the many `at(id).point` sites). Panics on a missing id.
    #[inline]
    pub fn point_at(&self, id: PointId) -> Point<D> {
        match self.slot_of(id) {
            Some(slot) => self.coords.point_at(slot),
            None => panic!("point {id} not in the store"),
        }
    }

    /// Meta-only read by value. Panics on a missing id.
    #[inline]
    pub fn meta_at(&self, id: PointId) -> PointMeta {
        match self.slot_of(id) {
            Some(slot) => self.meta[slot],
            None => panic!("point {id} not in the store"),
        }
    }

    /// Whether `id` is stored.
    #[inline]
    pub fn contains(&self, id: PointId) -> bool {
        self.slot_of(id).is_some()
    }

    /// Inserts a record. Panics if `id` is already present (the window
    /// driver guarantees unique arrivals). Grows if the slot is taken by a
    /// different live id — the live span exceeded the capacity.
    pub fn insert(&mut self, id: PointId, rec: PointRecord<D>) {
        loop {
            let slot = self.slot(id);
            let occupant = self.coords.id_at(slot);
            if occupant == EMPTY_ROW {
                self.coords.set_row(slot, id.raw(), id.raw(), &rec.point);
                self.meta[slot] = rec.meta();
                self.len += 1;
                return;
            }
            if occupant == id.raw() {
                panic!("point {id} inserted twice");
            }
            self.grow();
        }
    }

    /// Removes and returns the record for `id`.
    pub fn remove(&mut self, id: PointId) -> Option<PointRecord<D>> {
        let slot = self.slot_of(id)?;
        let rec = PointRecord::from_parts(self.coords.point_at(slot), self.meta[slot]);
        self.coords.clear_row(slot);
        self.len -= 1;
        Some(rec)
    }

    fn grow(&mut self) {
        let old_cap = self.coords.len();
        let new_cap = old_cap * 2;
        let mut coords = SoaColumns::new();
        coords.resize_rows(new_cap);
        let mut meta = vec![PointMeta::new(); new_cap];
        for slot in 0..old_cap {
            let raw = self.coords.id_at(slot);
            if raw == EMPTY_ROW {
                continue;
            }
            let new_slot = (raw as usize) & (new_cap - 1);
            debug_assert!(
                coords.id_at(new_slot) == EMPTY_ROW,
                "live span exceeds doubled capacity"
            );
            let p = self.coords.point_at(slot);
            coords.set_row(new_slot, raw, raw, &p);
            meta[new_slot] = self.meta[slot];
        }
        self.coords = coords;
        self.meta = meta;
    }

    /// Iterates over `(id, record)` pairs (records by value) in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, PointRecord<D>)> + '_ {
        (0..self.coords.len()).filter_map(move |slot| {
            let raw = self.coords.id_at(slot);
            (raw != EMPTY_ROW).then(|| {
                (
                    PointId(raw),
                    PointRecord::from_parts(self.coords.point_at(slot), self.meta[slot]),
                )
            })
        })
    }

    /// Pre-sizes the store for an expected live span.
    pub fn reserve_span(&mut self, span: usize) {
        while self.coords.len() < span.next_power_of_two() {
            self.grow();
        }
    }
}

impl<const D: usize> disc_telemetry::MemoryFootprint for PointStore<D> {
    fn footprint(&self) -> disc_telemetry::FootprintNode {
        use disc_telemetry::FootprintNode;
        FootprintNode::branch(
            "points",
            vec![
                FootprintNode::leaf("coords", self.coords.heap_bytes()),
                FootprintNode::leaf(
                    "meta",
                    self.meta.capacity() * std::mem::size_of::<PointMeta>(),
                ),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_geom::Point;

    fn rec(x: f64) -> PointRecord<2> {
        PointRecord::new(Point::new([x, 0.0]))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: PointStore<2> = PointStore::new();
        for i in 0..500u64 {
            s.insert(PointId(i), rec(i as f64));
        }
        assert_eq!(s.len(), 500);
        assert_eq!(s.at(PointId(42)).point[0], 42.0);
        assert_eq!(s.point_at(PointId(42))[0], 42.0);
        assert!(s.get(PointId(9999)).is_none());
        assert_eq!(s.remove(PointId(42)).unwrap().point[0], 42.0);
        assert!(s.get(PointId(42)).is_none());
        assert_eq!(s.len(), 499);
        assert!(s.remove(PointId(42)).is_none());
    }

    #[test]
    fn sliding_id_ranges_reuse_slots() {
        // Simulate a long stream with a small live span: ids wrap around
        // the ring without collisions.
        let mut s: PointStore<2> = PointStore::new();
        let window = 600u64;
        for i in 0..20_000u64 {
            s.insert(PointId(i), rec(i as f64));
            if i >= window {
                assert!(s.remove(PointId(i - window)).is_some());
            }
        }
        assert_eq!(s.len() as u64, window);
        assert_eq!(s.at(PointId(19_999)).point[0], 19_999.0);
    }

    #[test]
    fn grows_when_span_exceeds_capacity() {
        let mut s: PointStore<2> = PointStore::new();
        // 3000 concurrent live ids exceed the initial 1024 slots.
        for i in 0..3000u64 {
            s.insert(PointId(i), rec(i as f64));
        }
        assert_eq!(s.len(), 3000);
        for i in 0..3000u64 {
            assert_eq!(s.at(PointId(i)).point[0], i as f64);
        }
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s: PointStore<2> = PointStore::new();
        s.insert(PointId(7), rec(1.0));
        s.get_mut(PointId(7)).unwrap().n_eps = 99;
        assert_eq!(s.at(PointId(7)).n_eps, 99);
        assert_eq!(s.meta_at(PointId(7)).n_eps, 99);
        assert!(s.get_mut(PointId(8)).is_none());
    }

    #[test]
    fn meta_survives_growth() {
        let mut s: PointStore<2> = PointStore::new();
        for i in 0..2000u64 {
            s.insert(PointId(i), rec(i as f64));
            s.get_mut(PointId(i)).unwrap().n_eps = i as u32 + 10;
        }
        for i in 0..2000u64 {
            let r = s.at(PointId(i));
            assert_eq!(r.n_eps, i as u32 + 10);
            assert_eq!(r.point[0], i as f64);
        }
    }

    #[test]
    fn iter_visits_every_live_record_once() {
        let mut s: PointStore<2> = PointStore::new();
        for i in 100..200u64 {
            s.insert(PointId(i), rec(i as f64));
        }
        let mut ids: Vec<u64> = s.iter().map(|(id, _)| id.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (100..200).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_insert_panics() {
        let mut s: PointStore<2> = PointStore::new();
        s.insert(PointId(1), rec(0.0));
        s.insert(PointId(1), rec(0.0));
    }

    #[test]
    fn reserve_span_presizes() {
        let mut s: PointStore<2> = PointStore::new();
        s.reserve_span(50_000);
        for i in 0..50_000u64 {
            s.insert(PointId(i), rec(0.0));
        }
        assert_eq!(s.len(), 50_000);
    }
}
