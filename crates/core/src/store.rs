//! A ring-buffer point store.
//!
//! Under the count-based sliding window, live point ids always fall in a
//! span of at most `window + stride` consecutive arrival indices (window
//! contents plus the in-flight slide's ghosts). That makes a hash map
//! needlessly slow for the per-neighbour lookups on DISC's hot paths: this
//! store maps `id → slot = id mod capacity`, giving O(1) array access with
//! no hashing. Capacity doubles transparently if a slide ever widens the
//! live span (e.g. a first window smaller than later strides).

use crate::record::PointRecord;
use disc_geom::PointId;

/// Dense id-indexed storage for the window's [`PointRecord`]s.
#[derive(Clone, Debug)]
pub struct PointStore<const D: usize> {
    slots: Vec<Option<(PointId, PointRecord<D>)>>,
    len: usize,
}

impl<const D: usize> Default for PointStore<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> PointStore<D> {
    /// An empty store.
    pub fn new() -> Self {
        PointStore {
            slots: vec![None; 1024],
            len: 0,
        }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot(&self, id: PointId) -> usize {
        (id.raw() as usize) & (self.slots.len() - 1)
    }

    /// Read access; `None` if `id` is not stored.
    #[inline]
    pub fn get(&self, id: PointId) -> Option<&PointRecord<D>> {
        match &self.slots[self.slot(id)] {
            Some((sid, rec)) if *sid == id => Some(rec),
            _ => None,
        }
    }

    /// Mutable access; `None` if `id` is not stored.
    #[inline]
    pub fn get_mut(&mut self, id: PointId) -> Option<&mut PointRecord<D>> {
        let slot = self.slot(id);
        match &mut self.slots[slot] {
            Some((sid, rec)) if *sid == id => Some(rec),
            _ => None,
        }
    }

    /// Read access that panics on a missing id (hot-path `[]` analogue).
    #[inline]
    pub fn at(&self, id: PointId) -> &PointRecord<D> {
        self.get(id)
            .unwrap_or_else(|| panic!("point {id} not in the store"))
    }

    /// Whether `id` is stored.
    #[inline]
    pub fn contains(&self, id: PointId) -> bool {
        self.get(id).is_some()
    }

    /// Inserts a record. Panics if `id` is already present (the window
    /// driver guarantees unique arrivals). Grows if the slot is taken by a
    /// different live id — the live span exceeded the capacity.
    pub fn insert(&mut self, id: PointId, rec: PointRecord<D>) {
        loop {
            let slot = self.slot(id);
            match &self.slots[slot] {
                None => {
                    self.slots[slot] = Some((id, rec));
                    self.len += 1;
                    return;
                }
                Some((sid, _)) if *sid == id => {
                    panic!("point {id} inserted twice");
                }
                Some(_) => self.grow(),
            }
        }
    }

    /// Removes and returns the record for `id`.
    pub fn remove(&mut self, id: PointId) -> Option<PointRecord<D>> {
        let slot = self.slot(id);
        match &self.slots[slot] {
            Some((sid, _)) if *sid == id => {
                self.len -= 1;
                self.slots[slot].take().map(|(_, rec)| rec)
            }
            _ => None,
        }
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let mut bigger: Vec<Option<(PointId, PointRecord<D>)>> = vec![None; new_cap];
        for entry in self.slots.drain(..).flatten() {
            let slot = (entry.0.raw() as usize) & (new_cap - 1);
            debug_assert!(bigger[slot].is_none(), "live span exceeds doubled capacity");
            bigger[slot] = Some(entry);
        }
        self.slots = bigger;
    }

    /// Iterates over `(id, record)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &PointRecord<D>)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(id, rec)| (*id, rec)))
    }

    /// Pre-sizes the store for an expected live span.
    pub fn reserve_span(&mut self, span: usize) {
        while self.slots.len() < span.next_power_of_two() {
            self.grow();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_geom::Point;

    fn rec(x: f64) -> PointRecord<2> {
        PointRecord::new(Point::new([x, 0.0]))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: PointStore<2> = PointStore::new();
        for i in 0..500u64 {
            s.insert(PointId(i), rec(i as f64));
        }
        assert_eq!(s.len(), 500);
        assert_eq!(s.at(PointId(42)).point[0], 42.0);
        assert!(s.get(PointId(9999)).is_none());
        assert_eq!(s.remove(PointId(42)).unwrap().point[0], 42.0);
        assert!(s.get(PointId(42)).is_none());
        assert_eq!(s.len(), 499);
        assert!(s.remove(PointId(42)).is_none());
    }

    #[test]
    fn sliding_id_ranges_reuse_slots() {
        // Simulate a long stream with a small live span: ids wrap around
        // the ring without collisions.
        let mut s: PointStore<2> = PointStore::new();
        let window = 600u64;
        for i in 0..20_000u64 {
            s.insert(PointId(i), rec(i as f64));
            if i >= window {
                assert!(s.remove(PointId(i - window)).is_some());
            }
        }
        assert_eq!(s.len() as u64, window);
        assert_eq!(s.at(PointId(19_999)).point[0], 19_999.0);
    }

    #[test]
    fn grows_when_span_exceeds_capacity() {
        let mut s: PointStore<2> = PointStore::new();
        // 3000 concurrent live ids exceed the initial 1024 slots.
        for i in 0..3000u64 {
            s.insert(PointId(i), rec(i as f64));
        }
        assert_eq!(s.len(), 3000);
        for i in 0..3000u64 {
            assert_eq!(s.at(PointId(i)).point[0], i as f64);
        }
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s: PointStore<2> = PointStore::new();
        s.insert(PointId(7), rec(1.0));
        s.get_mut(PointId(7)).unwrap().n_eps = 99;
        assert_eq!(s.at(PointId(7)).n_eps, 99);
        assert!(s.get_mut(PointId(8)).is_none());
    }

    #[test]
    fn iter_visits_every_live_record_once() {
        let mut s: PointStore<2> = PointStore::new();
        for i in 100..200u64 {
            s.insert(PointId(i), rec(i as f64));
        }
        let mut ids: Vec<u64> = s.iter().map(|(id, _)| id.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (100..200).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_insert_panics() {
        let mut s: PointStore<2> = PointStore::new();
        s.insert(PointId(1), rec(0.0));
        s.insert(PointId(1), rec(0.0));
    }

    #[test]
    fn reserve_span_presizes() {
        let mut s: PointStore<2> = PointStore::new();
        s.reserve_span(50_000);
        for i in 0..50_000u64 {
            s.insert(PointId(i), rec(0.0));
        }
        assert_eq!(s.len(), 50_000);
    }
}
