//! The COLLECT step (paper Alg. 1).
//!
//! Maintains `n_ε` for every affected point, keeps the R-tree in sync with
//! the window, and identifies the ex-cores and neo-cores that drive the
//! CLUSTER step. Ex-cores that *left* the window (`C_out`) keep their R-tree
//! entry and record until the ex-core phase of CLUSTER is done, because
//! retro-reachability is defined over the previous window.

use crate::engine::Disc;
use crate::record::PointRecord;
use disc_geom::{FxHashMap, FxHashSet, Point, PointId};
use disc_index::SpatialBackend;
use disc_window::SlideBatch;

/// What COLLECT hands to CLUSTER.
#[derive(Debug, Default)]
pub struct CollectOutcome {
    /// All ex-cores (Def. 1), both departed (`C_out`) and in-window.
    pub ex_cores: Vec<PointId>,
    /// All neo-cores (Def. 2).
    pub neo_cores: Vec<PointId>,
    /// The departed ex-cores — still in the R-tree, to be removed after the
    /// ex-core phase (Alg. 2 line 8).
    pub ghosts: Vec<PointId>,
}

impl<const D: usize, B: SpatialBackend<D>> Disc<D, B> {
    /// Runs COLLECT for one slide batch.
    ///
    /// Two equivalent implementations of the deletion and insertion phases
    /// exist: the per-point path (one tree traversal per element, the
    /// paper's Alg. 1 read literally) and the batched path (bulk R-tree
    /// mutations plus one multi-center ε-ball traversal per phase). The
    /// [`DiscConfig::enable_bulk_slide`](crate::DiscConfig) toggle selects
    /// between them; both produce identical counts, adoptions-or-
    /// needs-adoption outcomes, and classifications.
    pub(crate) fn collect(&mut self, batch: &SlideBatch<D>) -> CollectOutcome {
        let tau = self.cfg.tau;
        let mut out = CollectOutcome::default();

        let sp = self.tracer.begin("delete");
        let before = self.tracer.enabled().then(|| *self.tree.stats());
        if self.cfg.enable_bulk_slide {
            self.delete_batched(batch, &mut out);
        } else {
            self.delete_per_point(batch, &mut out);
        }
        if let Some(b) = before {
            self.tracer
                .end_with_args(sp, &self.tree.stats().since(&b).span_args());
        }

        let sp = self.tracer.begin("insert");
        let before = self.tracer.enabled().then(|| *self.tree.stats());
        if self.cfg.enable_bulk_slide {
            self.insert_batched(batch);
        } else {
            self.insert_per_point(batch);
        }
        if let Some(b) = before {
            self.tracer
                .end_with_args(sp, &self.tree.stats().since(&b).span_args());
        }

        // --- Classification (Alg. 1 line 13) -----------------------------
        // Departed ex-cores first (they are no longer in `touched`).
        out.ex_cores.extend(out.ghosts.iter().copied());
        // Canonical order: `touched` is a hash set whose iteration order is
        // an artifact of insertion history, which the parallel gather path
        // changes. Sorting pins the classification order — and with it every
        // downstream seed order and cluster-id allocation — to the point ids
        // alone, so sequential and parallel slides emit identical output.
        let mut touched: Vec<PointId> = self.touched.iter().copied().collect();
        touched.sort_unstable();
        for id in &touched {
            let rec = self.points.at(*id);
            if rec.is_ex_core(tau) {
                out.ex_cores.push(*id);
            } else if rec.is_neo_core(tau) {
                out.neo_cores.push(*id);
            } else if !rec.is_core(tau) && rec.adopter.is_none() {
                // Fresh non-core without an opportunistic adopter, or a
                // point that dropped out of core range: let the adoption
                // pass decide between border and noise.
                self.needs_adoption.insert(*id);
            }
        }
        if self.prov_on {
            for id in &out.ex_cores {
                self.emit_prov(disc_telemetry::ProvenanceKind::ExCoreDetected { id: id.0 });
            }
            for id in &out.neo_cores {
                self.emit_prov(disc_telemetry::ProvenanceKind::NeoCoreDetected { id: id.0 });
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Per-point slide path
    // ------------------------------------------------------------------

    /// Deletions (Alg. 1 lines 2-7), one tree traversal per element.
    fn delete_per_point(&mut self, batch: &SlideBatch<D>, out: &mut CollectOutcome) {
        let eps = self.cfg.eps;
        for (id, _) in &batch.outgoing {
            let rec = self
                .points
                .get(*id)
                .unwrap_or_else(|| panic!("outgoing point {id} is not in the window"));
            debug_assert!(rec.in_window, "outgoing point {id} already retired");

            // Decrement the neighbourhood and invalidate adopters that
            // pointed at the departing point.
            let points = &mut self.points;
            let touched = &mut self.touched;
            let needs_adoption = &mut self.needs_adoption;
            let me = *id;
            self.tree.for_each_in_ball(&rec.point, eps, |qid, _| {
                if qid == me {
                    return;
                }
                if let Some(q) = points.get_mut(qid) {
                    if q.in_window {
                        q.n_eps -= 1;
                        touched.insert(qid);
                        if q.adopter == Some(me) {
                            q.adopter = None;
                            needs_adoption.insert(qid);
                        }
                    }
                }
            });

            if rec.prev_core {
                // Departed ex-core: keep the ghost (C_out).
                let ghost = self.points.get_mut(*id).expect("record vanished");
                ghost.in_window = false;
                ghost.n_eps = 0;
                out.ghosts.push(*id);
            } else {
                // Border/noise departures leave immediately.
                self.tree.remove(*id, rec.point);
                self.points.remove(*id);
            }
            self.touched.remove(id);
        }
    }

    /// Insertions (Alg. 1 lines 8-12), one tree traversal per element.
    fn insert_per_point(&mut self, batch: &SlideBatch<D>) {
        let eps = self.cfg.eps;
        let tau = self.cfg.tau;
        for (id, point) in &batch.incoming {
            debug_assert!(
                !self.points.contains(*id),
                "incoming point {id} already in the window"
            );
            // Finiteness is enforced up front by `Disc::validate`, before
            // any deletion mutated state; by the time COLLECT runs this can
            // only fire on an engine-internal bug.
            debug_assert!(
                point.is_finite(),
                "incoming point {id} has non-finite coordinates"
            );
            self.tree.insert(*id, *point);
            let mut fresh = PointRecord::new(*point);

            // Scan the neighbourhood: earlier insertions of this batch are
            // already indexed, so every Δin-internal pair is counted exactly
            // once (by the later of the two).
            let points = &mut self.points;
            let touched = &mut self.touched;
            let me = *id;
            let mut gained = 0u32;
            let mut adopter = None;
            self.tree.for_each_in_ball(point, eps, |qid, _| {
                if qid == me {
                    return;
                }
                if let Some(q) = points.get_mut(qid) {
                    if q.in_window {
                        q.n_eps += 1;
                        gained += 1;
                        touched.insert(qid);
                        // Opportunistic adoption: a neighbour that already
                        // meets τ now can only stay a core for the rest of
                        // the insertion phase (counts only grow), so it is a
                        // valid adopter for the final window. The smallest
                        // qualifying id wins so the choice is independent of
                        // the index's traversal order (and hence identical
                        // across spatial backends).
                        if q.n_eps as usize >= tau && adopter.is_none_or(|a| qid < a) {
                            adopter = Some(qid);
                        }
                    }
                }
            });
            fresh.n_eps += gained;
            fresh.adopter = adopter;
            self.points.insert(*id, fresh);
            self.touched.insert(*id);
        }
    }

    // ------------------------------------------------------------------
    // Batched slide path
    // ------------------------------------------------------------------

    /// Deletions via one multi-center traversal plus one bulk tree removal.
    ///
    /// All decrements run *before* any record is retired, so hits between
    /// two departing points are skipped explicitly — their effects are
    /// unobservable either way, because a departing ex-core resets its count
    /// to zero and every other departure drops its record entirely. Adopter
    /// invalidations on fellow departures are likewise skipped: the adoption
    /// pass ignores retired records.
    fn delete_batched(&mut self, batch: &SlideBatch<D>, out: &mut CollectOutcome) {
        if batch.outgoing.is_empty() {
            return;
        }
        let eps = self.cfg.eps;
        let outgoing: FxHashSet<PointId> = batch.outgoing.iter().map(|(id, _)| *id).collect();
        let mut ids: Vec<PointId> = Vec::with_capacity(batch.outgoing.len());
        let mut centers: Vec<Point<D>> = Vec::with_capacity(batch.outgoing.len());
        for (id, _) in &batch.outgoing {
            let rec = self
                .points
                .get(*id)
                .unwrap_or_else(|| panic!("outgoing point {id} is not in the window"));
            debug_assert!(rec.in_window, "outgoing point {id} already retired");
            ids.push(*id);
            centers.push(rec.point);
        }

        if self.pool.width() > 1 {
            // Wide path: gather raw hits over a frozen snapshot, replay the
            // effects sequentially. Every effect here is commutative across
            // hits (decrement, set insert, single-match adopter
            // invalidation), so the chunked hit order is equivalent to the
            // single bulk traversal's.
            for (ci, qid) in self.par_ball_hits(&centers) {
                if outgoing.contains(&qid) {
                    continue;
                }
                if let Some(q) = self.points.get_mut(qid) {
                    if q.in_window {
                        q.n_eps -= 1;
                        self.touched.insert(qid);
                        if q.adopter == Some(ids[ci as usize]) {
                            q.adopter = None;
                            self.needs_adoption.insert(qid);
                        }
                    }
                }
            }
        } else {
            let points = &mut self.points;
            let touched = &mut self.touched;
            let needs_adoption = &mut self.needs_adoption;
            self.tree.for_each_in_balls(&centers, eps, |ci, qid, _| {
                // Skips the center itself and every fellow departure.
                if outgoing.contains(&qid) {
                    return;
                }
                if let Some(q) = points.get_mut(qid) {
                    if q.in_window {
                        q.n_eps -= 1;
                        touched.insert(qid);
                        if q.adopter == Some(ids[ci]) {
                            q.adopter = None;
                            needs_adoption.insert(qid);
                        }
                    }
                }
            });
        }

        // Retire the records, then sync the tree with one bulk removal.
        // Departed ex-cores keep their entries (C_out ghosts).
        let mut evict: Vec<(PointId, Point<D>)> = Vec::new();
        for (ci, id) in ids.iter().enumerate() {
            let rec = self.points.at(*id);
            if rec.prev_core {
                let ghost = self.points.get_mut(*id).expect("record vanished");
                ghost.in_window = false;
                ghost.n_eps = 0;
                out.ghosts.push(*id);
            } else {
                evict.push((*id, centers[ci]));
                self.points.remove(*id);
            }
            self.touched.remove(id);
        }
        let evicted = self.tree.bulk_remove(&evict);
        debug_assert_eq!(evicted, evict.len(), "departing points must be indexed");
    }

    /// Insertions via one bulk tree insert plus one multi-center traversal.
    ///
    /// The whole stride is indexed first, then a single traversal resolves
    /// every neighbourhood. A pair of Δin points shows up twice (once from
    /// each center), so the count is applied on one orientation only —
    /// preserving the count-each-pair-once invariant the per-point path gets
    /// from its insert-then-scan ordering. Opportunistic adopters are taken
    /// from established neighbours that meet τ when observed: counts only
    /// grow during this phase, so such a neighbour is a core of the final
    /// window; newcomers the traversal cannot vouch for fall through to the
    /// adoption pass, which resolves them with final counts.
    fn insert_batched(&mut self, batch: &SlideBatch<D>) {
        if batch.incoming.is_empty() {
            return;
        }
        let eps = self.cfg.eps;
        let tau = self.cfg.tau;
        for (id, point) in &batch.incoming {
            debug_assert!(
                !self.points.contains(*id),
                "incoming point {id} already in the window"
            );
            // Finiteness is enforced up front by `Disc::validate`, before
            // any deletion mutated state; by the time COLLECT runs this can
            // only fire on an engine-internal bug.
            debug_assert!(
                point.is_finite(),
                "incoming point {id} has non-finite coordinates"
            );
        }
        self.tree.bulk_insert(batch.incoming.clone());

        let centers: Vec<Point<D>> = batch.incoming.iter().map(|(_, p)| *p).collect();
        let center_of: FxHashMap<PointId, u32> = batch
            .incoming
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, i as u32))
            .collect();
        let mut gained = vec![0u32; centers.len()];
        let mut hits: Vec<(u32, PointId)> = Vec::new();
        let mut intra: Vec<(u32, u32)> = Vec::new();
        if self.pool.width() > 1 {
            // Wide path: gather over the frozen post-insert snapshot, then
            // replay. All effects are commutative and the adopter choice
            // below runs on settled counts, so hit order is immaterial.
            for (ci, qid) in self.par_ball_hits(&centers) {
                if let Some(&qi) = center_of.get(&qid) {
                    if ci < qi {
                        intra.push((ci, qi));
                    }
                    continue;
                }
                if let Some(q) = self.points.get_mut(qid) {
                    if q.in_window {
                        q.n_eps += 1;
                        gained[ci as usize] += 1;
                        self.touched.insert(qid);
                        hits.push((ci, qid));
                    }
                }
            }
        } else {
            let points = &mut self.points;
            let touched = &mut self.touched;
            self.tree.for_each_in_balls(&centers, eps, |ci, qid, _| {
                if let Some(&qi) = center_of.get(&qid) {
                    // Δin-Δin pair: record one orientation, apply both ends
                    // later. `qi == ci` is the center finding itself.
                    if (ci as u32) < qi {
                        intra.push((ci as u32, qi));
                    }
                    return;
                }
                if let Some(q) = points.get_mut(qid) {
                    if q.in_window {
                        q.n_eps += 1;
                        gained[ci] += 1;
                        touched.insert(qid);
                        hits.push((ci as u32, qid));
                    }
                }
            });
        }
        for (a, b) in intra {
            gained[a as usize] += 1;
            gained[b as usize] += 1;
        }
        // Opportunistic adoption on settled counts: a pre-existing neighbour
        // whose final `n_ε` meets τ is a core of the new window and may adopt
        // the fresh point. Deciding after the scan (rather than mid-scan)
        // keeps the candidate set — and the min-id winner — independent of
        // the index's traversal order, so all spatial backends agree.
        let mut adopters: Vec<Option<PointId>> = vec![None; centers.len()];
        for &(ci, qid) in &hits {
            let q = self.points.at(qid);
            if q.n_eps as usize >= tau && adopters[ci as usize].is_none_or(|a| qid < a) {
                adopters[ci as usize] = Some(qid);
            }
        }

        for (i, (id, point)) in batch.incoming.iter().enumerate() {
            let mut fresh = PointRecord::new(*point);
            fresh.n_eps += gained[i];
            fresh.adopter = adopters[i];
            self.points.insert(*id, fresh);
            self.touched.insert(*id);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::DiscConfig;
    use crate::engine::Disc;
    use disc_geom::{Point, PointId};
    use disc_window::SlideBatch;

    fn batch(incoming: &[(u64, f64)], outgoing: &[(u64, f64)]) -> SlideBatch<2> {
        SlideBatch {
            incoming: incoming
                .iter()
                .map(|&(i, x)| (PointId(i), Point::new([x, 0.0])))
                .collect(),
            outgoing: outgoing
                .iter()
                .map(|&(i, x)| (PointId(i), Point::new([x, 0.0])))
                .collect(),
        }
    }

    #[test]
    fn collect_counts_are_self_inclusive() {
        // Three mutually-in-range points: every n_ε is 3 (self + 2).
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        let b = batch(&[(0, 0.0), (1, 0.5), (2, 1.0)], &[]);
        let outcome = disc.collect(&b);
        // ε is inclusive: |0.0 − 1.0| = ε, so all three are mutual
        // neighbours and every count is 3.
        for i in 0..3u64 {
            assert_eq!(disc.points.at(PointId(i)).n_eps, 3, "point {i}");
        }
        // All reach τ=2 and none were cores before: all neo-cores.
        assert_eq!(outcome.neo_cores.len(), 3);
        assert!(outcome.ex_cores.is_empty());
        assert!(outcome.ghosts.is_empty());
    }

    #[test]
    fn departing_core_becomes_a_ghost_until_cluster_runs() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[(0, 0.0), (1, 0.5), (2, 1.0)], &[]));
        // Run COLLECT alone for the departure of core 1.
        let b = batch(&[], &[(1, 0.5)]);
        let outcome = disc.collect(&b);
        assert_eq!(outcome.ghosts, vec![PointId(1)]);
        assert!(outcome.ex_cores.contains(&PointId(1)));
        // The ghost is still present with in_window = false; neighbours
        // were decremented.
        let ghost = disc.points.at(PointId(1));
        assert!(!ghost.in_window);
        // 0 and 2 are still neighbours of each other (dist = ε, inclusive).
        assert_eq!(disc.points.at(PointId(0)).n_eps, 2);
        assert_eq!(disc.points.at(PointId(2)).n_eps, 2);
    }

    #[test]
    fn departing_border_leaves_immediately() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 3));
        // 0,1,2 tight; 9 hangs off as a border of core 2.
        disc.apply(&batch(&[(0, 0.0), (1, 0.5), (2, 1.0), (9, 1.9)], &[]));
        let b = batch(&[], &[(9, 1.9)]);
        let outcome = disc.collect(&b);
        assert!(outcome.ghosts.is_empty(), "borders never become ghosts");
        assert!(disc.points.get(PointId(9)).is_none());
    }

    #[test]
    fn demoted_point_is_an_ex_core_without_leaving() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 3));
        disc.apply(&batch(&[(0, 0.0), (1, 0.5), (2, 1.0)], &[]));
        assert!(disc.is_core(PointId(1)));
        // Remove 0: point 1 drops to n=2 < 3 → in-window ex-core.
        let outcome = disc.collect(&batch(&[], &[(0, 0.0)]));
        assert!(outcome.ex_cores.contains(&PointId(1)));
        assert!(disc.points.at(PointId(1)).in_window);
    }

    #[test]
    fn opportunistic_adopters_are_set_at_insert_time() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 3));
        disc.apply(&batch(&[(0, 0.0), (1, 0.5), (2, 1.0)], &[]));
        // Newcomer lands within ε of established core 2 but stays non-core.
        let outcome = disc.collect(&batch(&[(9, 1.9)], &[]));
        let rec = disc.points.at(PointId(9));
        assert!(rec.adopter.is_some(), "must adopt an existing core");
        assert!(!outcome.neo_cores.contains(&PointId(9)));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_coordinates_are_rejected() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&SlideBatch {
            incoming: vec![(PointId(0), Point::new([f64::NAN, 0.0]))],
            outgoing: vec![],
        });
    }

    #[test]
    fn intra_batch_pairs_are_counted_once() {
        // Two Δin points within ε of each other: each ends with n_ε = 2.
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.collect(&batch(&[(0, 0.0), (1, 0.5)], &[]));
        assert_eq!(disc.points.at(PointId(0)).n_eps, 2);
        assert_eq!(disc.points.at(PointId(1)).n_eps, 2);
    }
}
