//! DISC configuration.

/// Parameters of a [`Disc`] instance.
///
/// `eps` and `tau` are DBSCAN's ε (distance threshold) and *MinPts* (called
/// τ in the paper; **self-inclusive**, following Alg. 1 which initialises a
/// fresh point's count to 1). The two boolean toggles disable the paper's
/// §IV optimisations individually, which is how the Fig. 8 ablation is run;
/// both default to enabled.
///
/// [`Disc`]: crate::Disc
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiscConfig {
    /// Distance threshold ε (inclusive).
    pub eps: f64,
    /// Density threshold τ / MinPts, counting the point itself.
    pub tau: usize,
    /// Use Multi-Starter BFS for connectivity checks (§IV-A). When false,
    /// falls back to sequential single-source BFS per component.
    pub enable_msbfs: bool,
    /// Use epoch-based R-tree probing (§IV-B). When false, visited marks
    /// live in a side hash map and range searches cannot prune subtrees.
    pub enable_epoch_probe: bool,
    /// Use the batched slide path in COLLECT: bulk R-tree insert/remove and
    /// one multi-center ε-ball traversal per phase instead of a traversal
    /// per point. Exactness is unaffected; this only changes how the same
    /// updates are computed. Defaults to enabled; disable for ablation.
    pub enable_bulk_slide: bool,
}

impl DiscConfig {
    /// A configuration with both optimisations enabled.
    pub fn new(eps: f64, tau: usize) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive");
        assert!(tau >= 1, "tau must be at least 1");
        DiscConfig {
            eps,
            tau,
            enable_msbfs: true,
            enable_epoch_probe: true,
            enable_bulk_slide: true,
        }
    }

    /// Disables MS-BFS (ablation).
    pub fn without_msbfs(mut self) -> Self {
        self.enable_msbfs = false;
        self
    }

    /// Disables epoch-based probing (ablation).
    pub fn without_epoch_probe(mut self) -> Self {
        self.enable_epoch_probe = false;
        self
    }

    /// Disables the batched slide path (ablation).
    pub fn without_bulk_slide(mut self) -> Self {
        self.enable_bulk_slide = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_toggles() {
        let c = DiscConfig::new(0.5, 4);
        assert!(c.enable_msbfs && c.enable_epoch_probe && c.enable_bulk_slide);
        let c = c.without_msbfs();
        assert!(!c.enable_msbfs && c.enable_epoch_probe);
        let c = c.without_epoch_probe();
        assert!(!c.enable_msbfs && !c.enable_epoch_probe);
        let c = c.without_bulk_slide();
        assert!(!c.enable_bulk_slide);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn zero_eps_rejected() {
        let _ = DiscConfig::new(0.0, 4);
    }

    #[test]
    #[should_panic(expected = "tau must be at least 1")]
    fn zero_tau_rejected() {
        let _ = DiscConfig::new(1.0, 0);
    }
}
