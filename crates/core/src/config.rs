//! DISC configuration.

/// Which [`SpatialBackend`](disc_index::SpatialBackend) implementor a
/// driver should instantiate the engine over.
///
/// The backend is a *type parameter* of [`Disc`](crate::Disc), so this enum
/// cannot switch it at runtime by itself; it is the declarative half that
/// CLI / bench drivers match on to pick the instantiation (and that reports
/// carry so results are attributable). [`DiscConfig::backend`] defaults to
/// the paper's R-tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexBackend {
    /// The paper's quadratic-split R-tree ([`disc_index::RTree`]).
    #[default]
    RTree,
    /// The ε-aligned uniform grid ([`disc_index::GridIndex`]).
    Grid,
    /// The Morton-curve-sorted flat array ([`disc_index::CurveIndex`]).
    Curve,
}

impl IndexBackend {
    /// Short name matching `SpatialBackend::NAME` (`"rtree"`, `"grid"`,
    /// `"curve"`).
    pub fn name(self) -> &'static str {
        match self {
            IndexBackend::RTree => "rtree",
            IndexBackend::Grid => "grid",
            IndexBackend::Curve => "curve",
        }
    }

    /// Parses a backend name as accepted by the CLI's `--index` flag.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rtree" => Some(IndexBackend::RTree),
            "grid" => Some(IndexBackend::Grid),
            "curve" => Some(IndexBackend::Curve),
            _ => None,
        }
    }

    /// Every selectable backend, in the order docs/benches list them.
    pub const ALL: [IndexBackend; 3] =
        [IndexBackend::RTree, IndexBackend::Grid, IndexBackend::Curve];
}

impl std::fmt::Display for IndexBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of a [`Disc`] instance.
///
/// `eps` and `tau` are DBSCAN's ε (distance threshold) and *MinPts* (called
/// τ in the paper; **self-inclusive**, following Alg. 1 which initialises a
/// fresh point's count to 1). The two boolean toggles disable the paper's
/// §IV optimisations individually, which is how the Fig. 8 ablation is run;
/// both default to enabled.
///
/// [`Disc`]: crate::Disc
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiscConfig {
    /// Distance threshold ε (inclusive).
    pub eps: f64,
    /// Density threshold τ / MinPts, counting the point itself.
    pub tau: usize,
    /// Use Multi-Starter BFS for connectivity checks (§IV-A). When false,
    /// falls back to sequential single-source BFS per component.
    pub enable_msbfs: bool,
    /// Use epoch-based R-tree probing (§IV-B). When false, visited marks
    /// live in a side hash map and range searches cannot prune subtrees.
    pub enable_epoch_probe: bool,
    /// Use the batched slide path in COLLECT: bulk R-tree insert/remove and
    /// one multi-center ε-ball traversal per phase instead of a traversal
    /// per point. Exactness is unaffected; this only changes how the same
    /// updates are computed. Defaults to enabled; disable for ablation.
    pub enable_bulk_slide: bool,
    /// Which index backend drivers should instantiate the engine over (see
    /// [`IndexBackend`]). Purely declarative for the engine itself.
    pub backend: IndexBackend,
    /// Worker count for the parallel slide engine. `0` means "auto": resolve
    /// to the machine's available parallelism at use time. `1` (the default)
    /// runs the exact sequential code path; any resolved value above 1 takes
    /// the parallel path, whose output is bit-identical to sequential for
    /// every thread count (see `DESIGN.md` §12).
    ///
    /// This is a *host-execution* knob, not an algorithm parameter: it is
    /// deliberately **not** persisted in checkpoints and does not affect any
    /// clustering output. [`DiscConfig::new`] seeds it from the
    /// `DISC_THREADS` environment variable when set (see
    /// [`default_threads`](DiscConfig::default_threads)), which is how CI
    /// runs the whole suite wide without per-test plumbing.
    pub threads: usize,
}

impl DiscConfig {
    /// A configuration with both optimisations enabled.
    pub fn new(eps: f64, tau: usize) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive");
        assert!(tau >= 1, "tau must be at least 1");
        DiscConfig {
            eps,
            tau,
            enable_msbfs: true,
            enable_epoch_probe: true,
            enable_bulk_slide: true,
            backend: IndexBackend::default(),
            threads: Self::default_threads(),
        }
    }

    /// The ambient default for [`threads`](DiscConfig::threads): the value
    /// of the `DISC_THREADS` environment variable if set and parseable
    /// (`0` = auto), else `1` (sequential). Read once per process and
    /// cached, so a stable environment yields a stable default — checkpoint
    /// decoding relies on this to keep config round-trips exact without
    /// persisting a host-execution knob.
    pub fn default_threads() -> usize {
        static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *DEFAULT.get_or_init(|| {
            std::env::var("DISC_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(1)
        })
    }

    /// Resolves [`threads`](DiscConfig::threads) to a concrete worker
    /// count: `0` becomes the machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            disc_par::available_parallelism()
        } else {
            self.threads
        }
    }

    /// Disables MS-BFS (ablation).
    pub fn without_msbfs(mut self) -> Self {
        self.enable_msbfs = false;
        self
    }

    /// Disables epoch-based probing (ablation).
    pub fn without_epoch_probe(mut self) -> Self {
        self.enable_epoch_probe = false;
        self
    }

    /// Disables the batched slide path (ablation).
    pub fn without_bulk_slide(mut self) -> Self {
        self.enable_bulk_slide = false;
        self
    }

    /// Declares the index backend drivers should instantiate over.
    pub fn with_backend(mut self, backend: IndexBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the worker count (`0` = auto, `1` = sequential, `n` = `n`-wide
    /// parallel slide engine). Output is identical for every value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_toggles() {
        let c = DiscConfig::new(0.5, 4);
        assert!(c.enable_msbfs && c.enable_epoch_probe && c.enable_bulk_slide);
        let c = c.without_msbfs();
        assert!(!c.enable_msbfs && c.enable_epoch_probe);
        let c = c.without_epoch_probe();
        assert!(!c.enable_msbfs && !c.enable_epoch_probe);
        let c = c.without_bulk_slide();
        assert!(!c.enable_bulk_slide);
    }

    #[test]
    fn backend_selection_round_trips() {
        let c = DiscConfig::new(0.5, 4);
        assert_eq!(c.backend, IndexBackend::RTree);
        let c = c.with_backend(IndexBackend::Grid);
        assert_eq!(c.backend, IndexBackend::Grid);
        assert_eq!(c.backend.name(), "grid");
        for b in IndexBackend::ALL {
            assert_eq!(IndexBackend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(IndexBackend::ALL.len(), 3);
        assert_eq!(IndexBackend::parse("kdtree"), None);
    }

    #[test]
    fn threads_builder_and_resolution() {
        let c = DiscConfig::new(0.5, 4);
        // The ambient default is stable within a process.
        assert_eq!(c.threads, DiscConfig::default_threads());
        let c = c.with_threads(4);
        assert_eq!(c.threads, 4);
        assert_eq!(c.effective_threads(), 4);
        let c = c.with_threads(0);
        // Auto resolves to whatever the host offers, never zero.
        assert!(c.effective_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn zero_eps_rejected() {
        let _ = DiscConfig::new(0.0, 4);
    }

    #[test]
    #[should_panic(expected = "tau must be at least 1")]
    fn zero_tau_rejected() {
        let _ = DiscConfig::new(1.0, 0);
    }
}
