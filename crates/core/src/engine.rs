//! The public `Disc` engine.

use crate::config::DiscConfig;
use crate::dsu::Dsu;
use crate::label::{ClusterId, PointLabel};
use crate::record::PointRecord;
use crate::stats::SlideStats;
use crate::store::PointStore;
use disc_geom::{FxHashMap, FxHashSet, Point, PointId};
use disc_index::{RTree, SpatialBackend};
use disc_telemetry::MemoryFootprint;
use disc_window::SlideBatch;
use std::cell::RefCell;

/// A slide batch that cannot be applied (driver bug).
///
/// Returned by [`Disc::try_apply`]; [`Disc::apply`] panics on the same
/// conditions instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlideError {
    /// An outgoing id is not in the current window.
    UnknownOutgoing(PointId),
    /// An incoming id is already in the window (or appears twice in the
    /// batch).
    DuplicateIncoming(PointId),
    /// An incoming point has a NaN or infinite coordinate. Such points have
    /// no meaningful ε-neighbourhood and would poison every index they
    /// touch, so they are rejected before any state changes.
    NonFinite(PointId),
}

impl std::fmt::Display for SlideError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlideError::UnknownOutgoing(id) => {
                write!(f, "outgoing point {id} is not in the window")
            }
            SlideError::DuplicateIncoming(id) => {
                write!(f, "incoming point {id} already in the window")
            }
            SlideError::NonFinite(id) => {
                write!(f, "incoming point {id} has non-finite coordinates")
            }
        }
    }
}

impl std::error::Error for SlideError {}

/// An incremental DBSCAN-equivalent clusterer for sliding windows.
///
/// Feed it the [`SlideBatch`]es produced by
/// [`disc_window::SlidingWindow`]; after every [`apply`] the engine holds
/// the exact density-based clustering of the current window.
///
/// The second type parameter selects the neighbourhood index — any
/// [`SpatialBackend`], defaulting to the paper's [`RTree`] so existing
/// `Disc<D>` code compiles unchanged. `Disc<D, GridIndex<D>>` runs the same
/// algorithm over the uniform grid:
///
/// ```
/// use disc_core::{Disc, DiscConfig};
/// use disc_index::GridIndex;
///
/// let mut disc: Disc<2, GridIndex<2>> = Disc::with_index(DiscConfig::new(1.0, 5));
/// # let _ = &mut disc;
/// ```
///
/// See the crate docs for an end-to-end example.
///
/// [`apply`]: Disc::apply
pub struct Disc<const D: usize, B: SpatialBackend<D> = RTree<D>> {
    pub(crate) cfg: DiscConfig,
    /// Per-point state, keyed by arrival id. After each `apply` this holds
    /// exactly the points of the current window.
    pub(crate) points: PointStore<D>,
    /// Spatial index over the window (plus `C_out` ghosts mid-slide).
    pub(crate) tree: B,
    /// Union-find over cluster ids; the canonical id is the root.
    pub(crate) clusters: Dsu,
    /// Non-core points whose adopter was invalidated this slide; resolved
    /// by the final adoption pass.
    pub(crate) needs_adoption: FxHashSet<PointId>,
    /// Points whose `n_ε` changed this slide (candidate ex-/neo-cores).
    pub(crate) touched: FxHashSet<PointId>,
    /// Memoised DSU-root resolution shared by every `&self` inspection
    /// method between slides; invalidated by `apply` (the only place unions
    /// happen). A bench loop calling `labels()`, `num_clusters()` and
    /// `census()` per slide walks each parent chain once, not three times.
    root_cache: RefCell<FxHashMap<u32, u32>>,
    last_stats: SlideStats,
    /// Telemetry destination. Defaults to the no-op recorder, whose
    /// `enabled() == false` makes publication one virtual call and a branch
    /// per slide — the algorithm itself is never instrumented inline.
    recorder: disc_telemetry::SharedRecorder,
    /// Committed slides so far (1-based sequence number of the next event).
    slide_seq: u64,
    /// Span tracer. Disabled by default; every span site costs one branch
    /// when off (see [`Tracer::begin`](disc_telemetry::Tracer::begin)).
    pub(crate) tracer: disc_telemetry::Tracer,
    /// Provenance events buffered during the current slide; published to
    /// the recorder only after the slide commits, so rejected batches leak
    /// nothing into the causal stream.
    pub(crate) prov: Vec<disc_telemetry::ProvenanceEvent>,
    /// Whether the current slide buffers provenance (recorder enabled).
    pub(crate) prov_on: bool,
    /// Worker pool for the parallel slide engine, sized from
    /// `cfg.effective_threads()` at construction. Width 1 (the default)
    /// keeps every phase on the exact sequential code path; any wider and
    /// the read-only scan phases fan out while all state mutation stays
    /// sequential — output is bit-identical either way (DESIGN.md §12).
    pub(crate) pool: disc_par::Pool,
}

impl<const D: usize> Disc<D> {
    /// Creates an engine with an empty window over the default R-tree
    /// backend. Defined on the default instantiation (rather than the
    /// generic one) so `Disc::new(cfg)` keeps inferring `Disc<D>` at call
    /// sites that never name a backend.
    pub fn new(cfg: DiscConfig) -> Self {
        Disc::with_index(cfg)
    }
}

impl<const D: usize, B: SpatialBackend<D>> Disc<D, B> {
    /// Creates an engine with an empty window over backend `B`. The backend
    /// is constructed with the configured ε as its sizing hint.
    pub fn with_index(cfg: DiscConfig) -> Self {
        let pool = disc_par::Pool::new(cfg.effective_threads());
        Disc {
            cfg,
            points: PointStore::new(),
            tree: B::with_eps_hint(cfg.eps),
            clusters: Dsu::new(),
            needs_adoption: FxHashSet::default(),
            touched: FxHashSet::default(),
            root_cache: RefCell::new(FxHashMap::default()),
            last_stats: SlideStats::default(),
            recorder: disc_telemetry::noop(),
            slide_seq: 0,
            tracer: disc_telemetry::Tracer::disabled(),
            prov: Vec::new(),
            prov_on: false,
            pool,
        }
    }

    /// The effective worker count of this engine (resolved from
    /// [`DiscConfig::threads`]; 1 = sequential).
    pub fn worker_width(&self) -> usize {
        self.pool.width()
    }

    /// Re-targets the worker pool (0 = auto). Safe at any slide boundary:
    /// the width is a host-execution knob that never reaches the
    /// clustering state, so a checkpointed run can resume at a different
    /// width — `disc resume --threads N` — and stay exact.
    pub fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads;
        self.pool = disc_par::Pool::new(self.cfg.effective_threads());
    }

    /// Scans `centers`' ε-balls in parallel over fixed-size chunks of the
    /// frozen index snapshot and returns the raw hits as `(center index,
    /// id)` pairs, concatenated in chunk order. Per-task index counters are
    /// merged back in task order, so the totals are independent of worker
    /// count. The chunk size is a constant (not derived from the width) so
    /// the chunk boundaries — and with them every per-chunk counter — are
    /// thread-count-invariant.
    ///
    /// Callers replay the returned hits sequentially; every COLLECT effect
    /// is commutative across hits (counts, set inserts, min-id adopter
    /// selection), so chunked hit order is as good as the single bulk
    /// traversal's.
    pub(crate) fn par_ball_hits(&mut self, centers: &[Point<D>]) -> Vec<(u32, PointId)> {
        const CHUNK: usize = 256;
        let eps = self.cfg.eps;
        let n_chunks = centers.len().div_ceil(CHUNK);
        let tree = &self.tree;
        let tasks = self.pool.run(n_chunks, |c| {
            let base = c * CHUNK;
            let slice = &centers[base..(base + CHUNK).min(centers.len())];
            let mut hits: Vec<(u32, PointId)> = Vec::new();
            let mut stats = disc_index::Stats::default();
            tree.scan_balls(
                slice,
                eps,
                |ci, qid, _| hits.push(((base + ci) as u32, qid)),
                &mut stats,
            );
            (hits, stats)
        });
        let mut all: Vec<(u32, PointId)> = Vec::new();
        for (hits, stats) in tasks {
            self.tree.stats_mut().merge(&stats);
            all.extend(hits);
        }
        all
    }

    /// Scans one ε-ball per listed point in parallel and returns each ball's
    /// ids in a map, preserving the index's per-ball traversal order (each
    /// ball is scanned by `scan_ball`, the same traversal
    /// `for_each_in_ball` runs). Used by the cluster phases, whose
    /// bit-identical replay depends on within-ball order. Counters merge
    /// back in task order.
    pub(crate) fn par_prefetch_balls(
        &mut self,
        ids: &[PointId],
    ) -> FxHashMap<PointId, Vec<PointId>> {
        const CHUNK: usize = 64;
        let eps = self.cfg.eps;
        let n_chunks = ids.len().div_ceil(CHUNK);
        let tree = &self.tree;
        let points = &self.points;
        let tasks = self.pool.run(n_chunks, |c| {
            let base = c * CHUNK;
            let slice = &ids[base..(base + CHUNK).min(ids.len())];
            let mut balls: Vec<(PointId, Vec<PointId>)> = Vec::with_capacity(slice.len());
            let mut stats = disc_index::Stats::default();
            for &id in slice {
                let center = points.point_at(id);
                let mut ball: Vec<PointId> = Vec::new();
                tree.scan_ball(&center, eps, |qid, _| ball.push(qid), &mut stats);
                balls.push((id, ball));
            }
            (balls, stats)
        });
        let mut map: FxHashMap<PointId, Vec<PointId>> = FxHashMap::default();
        for (balls, stats) in tasks {
            self.tree.stats_mut().merge(&stats);
            for (id, ball) in balls {
                map.insert(id, ball);
            }
        }
        map
    }

    /// Builder-style [`set_recorder`](Disc::set_recorder).
    pub fn with_recorder(mut self, recorder: disc_telemetry::SharedRecorder) -> Self {
        self.set_recorder(recorder);
        self
    }

    /// Routes this engine's telemetry to `recorder`. Every *committed*
    /// slide publishes per-phase latency histograms, evolution and index
    /// counters, and one structured [`SlideEvent`] — rejected batches
    /// ([`try_apply`](Disc::try_apply) errors) publish nothing.
    ///
    /// [`SlideEvent`]: disc_telemetry::SlideEvent
    pub fn set_recorder(&mut self, recorder: disc_telemetry::SharedRecorder) {
        self.recorder = recorder;
    }

    /// Builder-style [`set_tracer`](Disc::set_tracer).
    pub fn with_tracer(mut self, tracer: disc_telemetry::Tracer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// Installs a span tracer. An enabled tracer records one hierarchical
    /// span tree per committed slide (`slide → collect/cluster/adoption →
    /// msbfs / range-search groups`); collect via
    /// [`drain_spans`](Disc::drain_spans) or [`tracer`](Disc::tracer).
    /// Rejected batches record nothing.
    pub fn set_tracer(&mut self, tracer: disc_telemetry::Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (read access to recorded spans).
    pub fn tracer(&self) -> &disc_telemetry::Tracer {
        &self.tracer
    }

    /// Takes all spans recorded so far, leaving the tracer armed. Span ids
    /// stay unique across drains, so per-slide drains can be concatenated
    /// into one export batch.
    pub fn drain_spans(&mut self) -> Vec<disc_telemetry::SpanRecord> {
        self.tracer.drain()
    }

    /// Buffers one provenance event for the slide being applied. Published
    /// to the recorder only when the slide commits.
    #[inline]
    pub(crate) fn emit_prov(&mut self, kind: disc_telemetry::ProvenanceKind) {
        if self.prov_on {
            self.prov.push(disc_telemetry::ProvenanceEvent {
                slide: self.slide_seq + 1,
                kind,
            });
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DiscConfig {
        &self.cfg
    }

    /// The backend's short name (`"rtree"`, `"grid"`, `"curve"`).
    pub fn backend_name(&self) -> &'static str {
        B::NAME
    }

    /// Number of points in the current window.
    pub fn window_len(&self) -> usize {
        self.points.len()
    }

    /// Statistics of the most recent [`apply`](Disc::apply).
    pub fn last_stats(&self) -> &SlideStats {
        &self.last_stats
    }

    /// Cumulative index statistics (range searches etc.).
    pub fn index_stats(&self) -> &disc_index::Stats {
        self.tree.stats()
    }

    /// Advances the window by one slide: retires `batch.outgoing`, admits
    /// `batch.incoming`, and updates the clustering so it matches a
    /// from-scratch DBSCAN of the new window.
    ///
    /// Panics if an outgoing id is not in the window or an incoming id is
    /// already present — both indicate a driver bug. Use
    /// [`try_apply`](Disc::try_apply) to get a typed error instead.
    pub fn apply(&mut self, batch: &SlideBatch<D>) -> SlideStats {
        match self.try_apply(batch) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`apply`](Disc::apply): validates the batch first and
    /// returns a [`SlideError`] instead of panicking. On `Err` the engine
    /// is untouched and remains usable.
    pub fn try_apply(&mut self, batch: &SlideBatch<D>) -> Result<SlideStats, SlideError> {
        self.validate(batch)?;
        self.root_cache.borrow_mut().clear();
        self.prov.clear();
        self.prov_on = self.recorder.enabled();

        let start = std::time::Instant::now();
        let index_before = *self.tree.stats();
        let mut stats = SlideStats {
            inserted: batch.incoming.len(),
            removed: batch.outgoing.len(),
            ..SlideStats::default()
        };

        self.touched.clear();
        self.needs_adoption.clear();

        let sp_slide = self.tracer.begin("slide");

        let sp = self.tracer.begin("collect");
        let outcome = self.collect(batch);
        stats.ex_cores = outcome.ex_cores.len();
        stats.neo_cores = outcome.neo_cores.len();
        stats.collect_time = start.elapsed();
        self.tracer.end_with_args(
            sp,
            &[
                ("ex_cores", stats.ex_cores as u64),
                ("neo_cores", stats.neo_cores as u64),
            ],
        );

        let t_cluster = std::time::Instant::now();
        let sp = self.tracer.begin("cluster");
        self.cluster(&outcome, &mut stats);
        stats.cluster_time = t_cluster.elapsed();
        self.tracer.end_with_args(
            sp,
            &[
                ("splits", stats.splits as u64),
                ("merges", stats.merges as u64),
                ("emerged", stats.emerged as u64),
            ],
        );

        let t_adoption = std::time::Instant::now();
        let sp = self.tracer.begin("adoption");
        self.adoption_pass(&mut stats);
        stats.adoption_time = t_adoption.elapsed();
        self.tracer
            .end_with_args(sp, &[("searches", stats.adoption_searches as u64)]);

        // Freeze core status for the next slide and drop any remaining
        // bookkeeping. Ghost records were dropped by the cluster step.
        let tau = self.cfg.tau;
        for id in self.touched.drain() {
            if let Some(rec) = self.points.get_mut(id) {
                rec.prev_core = rec.in_window && rec.n_eps as usize >= tau;
            }
        }

        stats.index = self.tree.stats().since(&index_before);
        stats.elapsed = start.elapsed();
        // Byte accounting rides the same enabled() gate as the rest of the
        // telemetry: an uninstrumented engine never walks its footprint.
        let footprint = self.recorder.enabled().then(|| self.footprint());
        if let Some(fp) = &footprint {
            stats.mem_bytes = fp.total();
        }
        self.last_stats = stats;
        self.slide_seq += 1;
        self.tracer.end_with_args(
            sp_slide,
            &[
                ("seq", self.slide_seq),
                ("inserted", stats.inserted as u64),
                ("removed", stats.removed as u64),
                ("window", self.points.len() as u64),
            ],
        );
        if let Some(fp) = &footprint {
            for (component, bytes) in fp.flatten() {
                self.recorder.gauge_set_labeled(
                    "disc_mem_bytes",
                    "component",
                    &component,
                    bytes as f64,
                );
            }
            if let Some(rss) = disc_telemetry::rss_bytes() {
                self.recorder.gauge_set("disc_rss_bytes", rss as f64);
            }
            // Census gauges for the health layer: O(window), so they ride
            // the same gate as the footprint walk.
            let (core, border, noise) = self.census();
            self.recorder.gauge_set("disc_core_points", core as f64);
            self.recorder.gauge_set("disc_border_points", border as f64);
            self.recorder.gauge_set("disc_noise_points", noise as f64);
            self.recorder
                .gauge_set("disc_cluster_count", self.num_clusters() as f64);
        }
        stats.publish_to(
            self.recorder.as_ref(),
            self.slide_seq,
            "disc",
            B::NAME,
            self.points.len(),
        );
        // The slide is committed: release the buffered causal narrative.
        for ev in self.prov.drain(..) {
            self.recorder.emit_provenance(&ev);
        }
        Ok(stats)
    }

    /// Rejects batches that [`apply`](Disc::apply) would panic on, before
    /// any state is touched. Incoming ids may legally reuse an id departing
    /// in the same batch (outgoing retires first).
    fn validate(&self, batch: &SlideBatch<D>) -> Result<(), SlideError> {
        for (id, _) in &batch.outgoing {
            if !self.points.get(*id).map(|r| r.in_window).unwrap_or(false) {
                return Err(SlideError::UnknownOutgoing(*id));
            }
        }
        let outgoing: FxHashSet<PointId> = batch.outgoing.iter().map(|(id, _)| *id).collect();
        let mut fresh: FxHashSet<PointId> = FxHashSet::default();
        for (id, point) in &batch.incoming {
            if !point.is_finite() {
                return Err(SlideError::NonFinite(*id));
            }
            let present = self.points.get(*id).map(|r| r.in_window).unwrap_or(false);
            if (present && !outgoing.contains(id)) || !fresh.insert(*id) {
                return Err(SlideError::DuplicateIncoming(*id));
            }
        }
        Ok(())
    }

    /// Committed slides so far. The initial window fill counts as slide 1,
    /// so this equals the 1-based sequence number carried by the last
    /// published [`SlideEvent`](disc_telemetry::SlideEvent).
    pub fn slide_seq(&self) -> u64 {
        self.slide_seq
    }

    /// Restores the slide counter (checkpoint restore path).
    pub(crate) fn set_slide_seq(&mut self, seq: u64) {
        self.slide_seq = seq;
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// Whether `id` is currently a core point.
    pub fn is_core(&self, id: PointId) -> bool {
        self.points
            .get(id)
            .map(|r| r.is_core(self.cfg.tau))
            .unwrap_or(false)
    }

    /// The label of one window point (`None` if not in the window).
    pub fn label_of(&self, id: PointId) -> Option<PointLabel> {
        let rec = self.points.get(id)?;
        Some(self.resolve_label(&rec))
    }

    fn resolve_label(&self, rec: &PointRecord<D>) -> PointLabel {
        let mut cache = self.root_cache.borrow_mut();
        self.resolve_label_with(rec, &mut |x| self.clusters.find_cached(x, &mut cache))
    }

    /// Label resolution with a pluggable root lookup, so whole-window
    /// methods can share one memoised find per call instead of walking the
    /// same union-find chains once per point.
    fn resolve_label_with(
        &self,
        rec: &PointRecord<D>,
        find: &mut impl FnMut(u32) -> u32,
    ) -> PointLabel {
        if rec.is_core(self.cfg.tau) {
            return PointLabel::Core(ClusterId(find(rec.cid.0)));
        }
        match rec.adopter {
            Some(a) => match self.points.get(a) {
                Some(core) => {
                    debug_assert!(core.is_core(self.cfg.tau), "stale adopter {a}");
                    PointLabel::Border(ClusterId(find(core.cid.0)))
                }
                None => PointLabel::Noise,
            },
            None => PointLabel::Noise,
        }
    }

    /// Labels of every window point, in unspecified order.
    pub fn labels(&self) -> Vec<(PointId, PointLabel)> {
        let mut cache = self.root_cache.borrow_mut();
        self.points
            .iter()
            .map(|(id, rec)| {
                let label = self
                    .resolve_label_with(&rec, &mut |x| self.clusters.find_cached(x, &mut cache));
                (id, label)
            })
            .collect()
    }

    /// `(id, cluster)` assignments sorted by arrival id, with `-1` for
    /// noise — the exchange format of the metrics crate and CSV dumps.
    pub fn assignments(&self) -> Vec<(PointId, i64)> {
        let mut cache = self.root_cache.borrow_mut();
        let mut out: Vec<(PointId, i64)> = self
            .points
            .iter()
            .map(|(id, rec)| {
                let label = self
                    .resolve_label_with(&rec, &mut |x| self.clusters.find_cached(x, &mut cache));
                (id, label.as_i64())
            })
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// `(point, cluster)` rows for snapshot dumps (Fig. 12).
    pub fn snapshot(&self) -> Vec<(Point<D>, i64)> {
        let mut cache = self.root_cache.borrow_mut();
        let mut rows: Vec<(PointId, Point<D>, i64)> = self
            .points
            .iter()
            .map(|(id, rec)| {
                let label = self
                    .resolve_label_with(&rec, &mut |x| self.clusters.find_cached(x, &mut cache));
                (id, rec.point, label.as_i64())
            })
            .collect();
        rows.sort_unstable_by_key(|(id, _, _)| *id);
        rows.into_iter().map(|(_, p, l)| (p, l)).collect()
    }

    /// Number of distinct clusters in the current window.
    pub fn num_clusters(&self) -> usize {
        let mut cache = self.root_cache.borrow_mut();
        let mut roots: FxHashSet<u32> = FxHashSet::default();
        for (_, rec) in self.points.iter() {
            if rec.is_core(self.cfg.tau) {
                roots.insert(self.clusters.find_cached(rec.cid.0, &mut cache));
            }
        }
        roots.len()
    }

    /// Number of core / border / noise points (diagnostics).
    pub fn census(&self) -> (usize, usize, usize) {
        let mut cache = self.root_cache.borrow_mut();
        let mut core = 0;
        let mut border = 0;
        let mut noise = 0;
        for (_, rec) in self.points.iter() {
            match self.resolve_label_with(&rec, &mut |x| self.clusters.find_cached(x, &mut cache)) {
                PointLabel::Core(_) => core += 1,
                PointLabel::Border(_) => border += 1,
                PointLabel::Noise => noise += 1,
            }
        }
        (core, border, noise)
    }

    /// Validates internal invariants exhaustively — O(n · range search).
    /// Test-only helper.
    pub fn check_invariants(&mut self) {
        self.tree.check_invariants();
        assert_eq!(self.tree.len(), self.points.len(), "tree/map desync");
        let tau = self.cfg.tau;
        let eps = self.cfg.eps;
        let ids: Vec<(PointId, Point<D>)> =
            self.points.iter().map(|(id, r)| (id, r.point)).collect();
        for (id, pos) in ids {
            let n = self.tree.ball_count(&pos, eps);
            let rec = self.points.at(id);
            assert!(rec.in_window, "ghost survived the slide: {id}");
            assert_eq!(
                rec.n_eps as usize, n,
                "n_eps out of date for {id} at {pos:?}"
            );
            assert_eq!(rec.prev_core, rec.is_core(tau), "prev_core not frozen");
            if !rec.is_core(tau) {
                if let Some(a) = rec.adopter {
                    let arec = self.points.get(a).expect("adopter left the window");
                    assert!(arec.is_core(tau), "adopter of {id} is not a core");
                    assert!(
                        rec.point.within(&arec.point, eps),
                        "adopter of {id} is out of range"
                    );
                }
            }
        }
    }
}

impl<const D: usize, B: SpatialBackend<D>> disc_telemetry::MemoryFootprint for Disc<D, B> {
    /// Engine-state heap bytes, decomposed into the components the
    /// `disc_mem_bytes{component=...}` gauges publish: point store, spatial
    /// index, cluster DSU, the per-slide bookkeeping sets, and the memoised
    /// root cache. Thread-pool stacks and transient slide scratch are out of
    /// scope — this accounts for what the window *retains*.
    fn footprint(&self) -> disc_telemetry::FootprintNode {
        use disc_telemetry::{map_bytes, FootprintNode};
        let set_entry = std::mem::size_of::<(PointId, ())>();
        let sets = map_bytes(self.needs_adoption.capacity(), set_entry)
            + map_bytes(self.touched.capacity(), set_entry);
        let cache = map_bytes(
            self.root_cache.borrow().capacity(),
            std::mem::size_of::<(u32, u32)>(),
        );
        FootprintNode::branch(
            "engine",
            vec![
                self.points.footprint(),
                self.tree.footprint(),
                self.clusters.footprint(),
                FootprintNode::leaf("sets", sets),
                FootprintNode::leaf("root_cache", cache),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_geom::Point;
    use disc_index::GridIndex;

    fn batch(incoming: &[(u64, [f64; 2])], outgoing: &[(u64, [f64; 2])]) -> SlideBatch<2> {
        SlideBatch {
            incoming: incoming
                .iter()
                .map(|&(i, c)| (PointId(i), Point::new(c)))
                .collect(),
            outgoing: outgoing
                .iter()
                .map(|&(i, c)| (PointId(i), Point::new(c)))
                .collect(),
        }
    }

    #[test]
    fn empty_engine_reports_empty_everything() {
        let disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 3));
        assert_eq!(disc.window_len(), 0);
        assert_eq!(disc.num_clusters(), 0);
        assert!(disc.labels().is_empty());
        assert!(disc.assignments().is_empty());
        assert!(disc.snapshot().is_empty());
        assert_eq!(disc.label_of(PointId(0)), None);
        assert!(!disc.is_core(PointId(0)));
        assert_eq!(disc.census(), (0, 0, 0));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 3));
        disc.apply(&batch(
            &[(0, [0.0, 0.0]), (1, [0.5, 0.0]), (2, [1.0, 0.0])],
            &[],
        ));
        let before = disc.assignments();
        let stats = disc.apply(&SlideBatch::default());
        assert_eq!(stats.inserted, 0);
        assert_eq!(stats.removed, 0);
        assert_eq!(disc.assignments(), before);
        disc.check_invariants();
    }

    #[test]
    fn assignments_sorted_and_snapshot_parallel() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(
            &[(5, [0.0, 0.0]), (1, [0.5, 0.0]), (9, [100.0, 0.0])],
            &[],
        ));
        let a = disc.assignments();
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
        let snap = disc.snapshot();
        assert_eq!(snap.len(), 3);
        // Snapshot rows follow the same id order: row 0 = id 1 at (0.5, 0).
        assert_eq!(snap[0].0, Point::new([0.5, 0.0]));
        assert_eq!(snap[0].1, a[0].1);
    }

    #[test]
    fn last_stats_reflects_latest_apply() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[(0, [0.0, 0.0]), (1, [0.5, 0.0])], &[]));
        let s = disc.apply(&batch(&[(2, [1.0, 0.0])], &[(0, [0.0, 0.0])]));
        assert_eq!(disc.last_stats(), &s);
        assert_eq!(s.inserted, 1);
        assert_eq!(s.removed, 1);
    }

    #[test]
    fn phase_durations_sum_below_elapsed() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        let s = disc.apply(&batch(&[(0, [0.0, 0.0]), (1, [0.5, 0.0])], &[]));
        assert!(s.collect_time + s.cluster_time + s.adoption_time <= s.elapsed);
    }

    #[test]
    #[should_panic(expected = "not in the window")]
    fn removing_unknown_point_panics() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[], &[(7, [0.0, 0.0])]));
    }

    #[test]
    #[should_panic(expected = "already in the window")]
    fn inserting_duplicate_point_panics() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[(0, [0.0, 0.0])], &[]));
        disc.apply(&batch(&[(0, [1.0, 0.0])], &[]));
    }

    #[test]
    fn try_apply_reports_unknown_outgoing_and_leaves_engine_usable() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[(0, [0.0, 0.0]), (1, [0.5, 0.0])], &[]));
        let before = disc.assignments();
        let err = disc
            .try_apply(&batch(&[(2, [1.0, 0.0])], &[(7, [0.0, 0.0])]))
            .unwrap_err();
        assert_eq!(err, SlideError::UnknownOutgoing(PointId(7)));
        assert_eq!(err.to_string(), "outgoing point p7 is not in the window");
        // The failed batch must not have touched anything.
        assert_eq!(disc.assignments(), before);
        assert_eq!(disc.window_len(), 2);
        assert!(disc
            .try_apply(&batch(&[(2, [1.0, 0.0])], &[(0, [0.0, 0.0])]))
            .is_ok());
        disc.check_invariants();
    }

    #[test]
    fn try_apply_reports_duplicate_incoming() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[(0, [0.0, 0.0])], &[]));
        // Already in the window.
        let err = disc.try_apply(&batch(&[(0, [1.0, 0.0])], &[])).unwrap_err();
        assert_eq!(err, SlideError::DuplicateIncoming(PointId(0)));
        // Repeated inside one batch.
        let err = disc
            .try_apply(&batch(&[(5, [1.0, 0.0]), (5, [2.0, 0.0])], &[]))
            .unwrap_err();
        assert_eq!(err, SlideError::DuplicateIncoming(PointId(5)));
        // Reusing an id that departs in the same batch is legal.
        assert!(disc
            .try_apply(&batch(&[(0, [3.0, 0.0])], &[(0, [0.0, 0.0])]))
            .is_ok());
        assert_eq!(disc.window_len(), 1);
    }

    #[test]
    fn try_apply_rejects_non_finite_points_untouched() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[(0, [0.0, 0.0]), (1, [0.5, 0.0])], &[]));
        let before = disc.assignments();
        for coords in [
            [f64::NAN, 0.0],
            [0.0, f64::INFINITY],
            [f64::NEG_INFINITY, 0.0],
        ] {
            let err = disc.try_apply(&batch(&[(9, coords)], &[])).unwrap_err();
            assert_eq!(err, SlideError::NonFinite(PointId(9)));
            assert_eq!(
                err.to_string(),
                "incoming point p9 has non-finite coordinates"
            );
        }
        // Rejection happens before any deletion: a batch that also retires
        // a point leaves the outgoing point in place.
        let err = disc
            .try_apply(&batch(&[(9, [f64::NAN, 0.0])], &[(0, [0.0, 0.0])]))
            .unwrap_err();
        assert_eq!(err, SlideError::NonFinite(PointId(9)));
        assert_eq!(disc.assignments(), before);
        assert_eq!(disc.window_len(), 2);
        disc.check_invariants();
        // The engine stays usable.
        assert!(disc.try_apply(&batch(&[(2, [1.0, 0.0])], &[])).is_ok());
    }

    #[test]
    #[should_panic(expected = "incoming point p13 has non-finite coordinates")]
    fn apply_panic_names_the_non_finite_point() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[(13, [f64::NAN, 1.0])], &[]));
    }

    #[test]
    fn cumulative_index_stats_grow() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[(0, [0.0, 0.0])], &[]));
        let first = disc.index_stats().range_searches;
        disc.apply(&batch(&[(1, [0.5, 0.0])], &[]));
        assert!(disc.index_stats().range_searches > first);
    }

    #[test]
    fn committed_slides_publish_telemetry() {
        use disc_telemetry::{MemorySink, Registry};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        struct Fwd(Arc<MemorySink>);
        impl disc_telemetry::EventSink for Fwd {
            fn emit(&self, ev: &disc_telemetry::SlideEvent) {
                self.0.emit(ev);
            }
        }
        let reg = Arc::new(Registry::with_sink(Box::new(Fwd(sink.clone()))));
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2)).with_recorder(reg.clone());
        disc.apply(&batch(&[(0, [0.0, 0.0]), (1, [0.5, 0.0])], &[]));
        disc.apply(&batch(&[(2, [1.0, 0.0])], &[(0, [0.0, 0.0])]));

        assert_eq!(reg.counter_value("disc_slides_total"), 2);
        assert_eq!(reg.counter_value("disc_points_inserted_total"), 3);
        assert_eq!(reg.counter_value("disc_points_removed_total"), 1);
        assert!(reg.counter_value("disc_index_range_searches_total") > 0);
        assert_eq!(reg.gauge_value("disc_window_points"), Some(2.0));
        let slide = reg.histogram_snapshot("disc_slide_seconds").unwrap();
        assert_eq!(slide.count, 2);
        assert!(slide.max > 0);
        assert!(reg.histogram_snapshot("disc_collect_seconds").is_some());
        assert!(reg.histogram_snapshot("disc_cluster_seconds").is_some());
        assert!(reg.histogram_snapshot("disc_adoption_seconds").is_some());

        // Structured events: sequenced, labelled, consistent with stats.
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].seq, 2);
        assert_eq!(events[1].engine, "disc");
        assert_eq!(events[1].backend, "rtree");
        assert_eq!(events[1].window_len, 2);
        assert_eq!(events[1].inserted, 1);
        assert_eq!(events[1].removed, 1);
        assert!(events[1].total_ns > 0);
        assert_eq!(
            events[1].range_searches,
            disc.last_stats().index.range_searches
        );
        disc_telemetry::SlideEvent::validate_jsonl(&events[1].to_jsonl()).unwrap();
    }

    #[test]
    fn rejected_slides_publish_nothing() {
        use disc_telemetry::{MemorySink, Registry};
        use std::sync::Arc;

        let reg = Arc::new(Registry::new());
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2)).with_recorder(reg.clone());
        disc.apply(&batch(&[(0, [0.0, 0.0]), (1, [0.5, 0.0])], &[]));
        let before_counters = reg.counter_value("disc_slides_total");
        let before_events = reg.events_emitted();
        let before_assignments = disc.assignments();

        // Both error paths: engine state unchanged, no partial slide in the
        // telemetry stream.
        assert!(disc
            .try_apply(&batch(&[(5, [1.0, 0.0])], &[(7, [0.0, 0.0])]))
            .is_err());
        assert!(disc.try_apply(&batch(&[(0, [1.0, 0.0])], &[])).is_err());
        assert_eq!(reg.counter_value("disc_slides_total"), before_counters);
        assert_eq!(reg.counter_value("disc_points_inserted_total"), 2);
        assert_eq!(reg.events_emitted(), before_events);
        assert_eq!(
            reg.histogram_snapshot("disc_slide_seconds").unwrap().count,
            1
        );
        assert_eq!(disc.assignments(), before_assignments);

        // The next committed slide continues the sequence with no gap.
        let sink = Arc::new(MemorySink::new());
        struct Fwd(Arc<MemorySink>);
        impl disc_telemetry::EventSink for Fwd {
            fn emit(&self, ev: &disc_telemetry::SlideEvent) {
                self.0.emit(ev);
            }
        }
        let reg2 = Arc::new(Registry::with_sink(Box::new(Fwd(sink.clone()))));
        disc.set_recorder(reg2);
        disc.apply(&batch(&[(2, [1.0, 0.0])], &[]));
        assert_eq!(sink.events()[0].seq, 2);
    }

    #[test]
    fn tracer_records_the_slide_hierarchy() {
        use disc_telemetry::Tracer;
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2)).with_tracer(Tracer::new());
        disc.apply(&batch(&[(0, [0.0, 0.0]), (1, [0.5, 0.0])], &[]));
        let spans = disc.drain_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"slide"));
        assert!(names.contains(&"collect"));
        assert!(names.contains(&"cluster"));
        assert!(names.contains(&"adoption"));
        assert!(names.contains(&"delete"));
        assert!(names.contains(&"insert"));
        // collect/cluster/adoption are children of slide; delete/insert of
        // collect.
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let slide = by_name("slide");
        assert_eq!(slide.parent, 0, "slide is a root span");
        assert_eq!(by_name("collect").parent, slide.id);
        assert_eq!(by_name("cluster").parent, slide.id);
        assert_eq!(by_name("adoption").parent, slide.id);
        assert_eq!(by_name("insert").parent, by_name("collect").id);
        // The insert phase touched the index: its span carries the diff.
        assert!(by_name("insert")
            .args
            .iter()
            .any(|&(k, v)| k == "inserts" && v == 2));
        // Slide args identify the slide.
        assert!(slide.args.contains(&("seq", 1)));
        assert!(slide.args.contains(&("inserted", 2)));
        // The export pipeline accepts the batch.
        disc_telemetry::validate_chrome_trace(&disc_telemetry::chrome_trace_json(&spans)).unwrap();

        // Splitting slides nest an msbfs span under cluster.
        let pts: Vec<(u64, [f64; 2])> = (0..9).map(|i| (i, [i as f64 * 0.5, 0.0])).collect();
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(0.6, 3)).with_tracer(Tracer::new());
        disc.apply(&batch(&pts, &[]));
        disc.drain_spans();
        disc.apply(&batch(&[], &[(4, [2.0, 0.0])]));
        let spans = disc.drain_spans();
        let cluster = spans.iter().find(|s| s.name == "cluster").unwrap();
        let msbfs = spans.iter().find(|s| s.name == "msbfs").unwrap();
        assert_eq!(msbfs.parent, cluster.id);
        assert!(msbfs.args.iter().any(|&(k, _)| k == "rounds"));
        assert!(msbfs.args.iter().any(|&(k, v)| k == "ncc" && v == 2));
    }

    #[test]
    fn disabled_tracer_records_no_spans() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[(0, [0.0, 0.0]), (1, [0.5, 0.0])], &[]));
        assert!(disc.tracer().is_empty());
        assert!(disc.drain_spans().is_empty());
    }

    #[test]
    fn committed_slides_emit_the_causal_narrative() {
        use disc_telemetry::{MemoryProvenanceSink, ProvenanceKind, ProvenanceSink, Registry};
        use std::sync::Arc;

        let sink = Arc::new(MemoryProvenanceSink::new());
        struct Fwd(Arc<MemoryProvenanceSink>);
        impl ProvenanceSink for Fwd {
            fn emit(&self, ev: &disc_telemetry::ProvenanceEvent) {
                self.0.emit(ev);
            }
        }
        let reg = Arc::new(Registry::new().with_provenance(Box::new(Fwd(sink.clone()))));
        let pts: Vec<(u64, [f64; 2])> = (0..9).map(|i| (i, [i as f64 * 0.5, 0.0])).collect();
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(0.6, 3)).with_recorder(reg.clone());
        disc.apply(&batch(&pts, &[]));

        // Slide 1: the line emerges — neo-cores detected, one emergence.
        let evs = sink.events();
        assert!(evs
            .iter()
            .any(|e| matches!(e.kind, ProvenanceKind::NeoCoreDetected { id: 4 })));
        assert!(evs.iter().all(|e| e.slide == 1));
        let emerged: Vec<_> = evs
            .iter()
            .filter(|e| matches!(e.kind, ProvenanceKind::ClusterEmerged { .. }))
            .collect();
        assert_eq!(emerged.len(), 1);

        // Slide 2: cutting the bridge names the ex-core and the split.
        disc.apply(&batch(&[], &[(4, [2.0, 0.0])]));
        let evs = sink.events();
        let slide2: Vec<_> = evs.iter().filter(|e| e.slide == 2).collect();
        assert!(slide2
            .iter()
            .any(|e| matches!(e.kind, ProvenanceKind::ExCoreDetected { id: 4 })));
        assert!(slide2
            .iter()
            .any(|e| matches!(e.kind, ProvenanceKind::RetroClassFormed { .. })));
        assert!(slide2
            .iter()
            .any(|e| matches!(e.kind, ProvenanceKind::MsBfsStarted { .. })));
        let split = slide2
            .iter()
            .find_map(|e| match e.kind {
                ProvenanceKind::ClusterSplit { old, parts, rep } => Some((old, parts, rep)),
                _ => None,
            })
            .expect("split event");
        assert_eq!(split.1, 2, "the line breaks in two");
        // The terminated event explains why the search stopped.
        let term = slide2
            .iter()
            .find_map(|e| match e.kind {
                ProvenanceKind::MsBfsTerminated { reason, rounds, .. } => Some((reason, rounds)),
                _ => None,
            })
            .expect("terminated event");
        assert_eq!(term.0, disc_telemetry::MsBfsReason::Exhausted);
        assert!(term.1 >= 1);
        // Every event round-trips through the JSONL schema.
        for e in &evs {
            disc_telemetry::ProvenanceEvent::validate_jsonl(&e.to_jsonl()).unwrap();
        }
        assert_eq!(reg.provenance_emitted(), evs.len() as u64);
    }

    #[test]
    fn rejected_slides_leak_no_spans_or_provenance() {
        use disc_telemetry::{Registry, Tracer};
        use std::sync::Arc;

        let reg = Arc::new(Registry::new());
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2))
            .with_recorder(reg.clone())
            .with_tracer(Tracer::new());
        disc.apply(&batch(&[(0, [0.0, 0.0]), (1, [0.5, 0.0])], &[]));
        let spans_before = disc.tracer().len();
        let prov_before = reg.provenance_emitted();

        assert!(disc
            .try_apply(&batch(&[(5, [1.0, 0.0])], &[(7, [0.0, 0.0])]))
            .is_err());
        assert!(disc.try_apply(&batch(&[(0, [1.0, 0.0])], &[])).is_err());

        assert_eq!(disc.tracer().len(), spans_before, "no spans leaked");
        assert_eq!(reg.provenance_emitted(), prov_before, "no events leaked");
        // The next committed slide resumes cleanly: exactly one new slide
        // span tree, still exporting a valid trace.
        disc.apply(&batch(&[(2, [1.0, 0.0])], &[]));
        let spans = disc.drain_spans();
        assert_eq!(spans.iter().filter(|s| s.name == "slide").count(), 2);
        disc_telemetry::validate_chrome_trace(&disc_telemetry::chrome_trace_json(&spans)).unwrap();
    }

    #[test]
    fn msbfs_counters_reach_slide_stats() {
        // A bridge point leaves, splitting one line cluster in two: the
        // slide must run at least one connectivity check and report its
        // starters and rounds.
        let pts: Vec<(u64, [f64; 2])> = (0..9).map(|i| (i, [i as f64 * 0.5, 0.0])).collect();
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(0.6, 3));
        disc.apply(&batch(&pts, &[]));
        let s = disc.apply(&batch(&[], &[(4, [2.0, 0.0])]));
        assert_eq!(s.splits, 1);
        assert!(s.msbfs_instances >= 1, "stats {s:?}");
        assert!(s.msbfs_starters >= 2);
        assert!(s.msbfs_rounds >= 1);
    }

    #[test]
    fn grid_backend_clusters_like_the_default() {
        let pts: Vec<(u64, [f64; 2])> = (0..12)
            .map(|i| (i, [(i % 4) as f64 * 0.5, (i / 4) as f64 * 0.5]))
            .chain((20..24).map(|i| (i, [50.0 + (i % 4) as f64 * 0.5, 0.0])))
            .collect();
        let b = batch(&pts, &[]);
        let mut rtree: Disc<2> = Disc::new(DiscConfig::new(1.0, 3));
        let mut grid: Disc<2, GridIndex<2>> = Disc::with_index(DiscConfig::new(1.0, 3));
        assert_eq!(rtree.backend_name(), "rtree");
        assert_eq!(grid.backend_name(), "grid");
        rtree.apply(&b);
        grid.apply(&b);
        assert_eq!(rtree.assignments(), grid.assignments());
        assert_eq!(rtree.num_clusters(), grid.num_clusters());
        grid.check_invariants();
    }

    #[test]
    fn curve_backend_clusters_like_the_default() {
        let pts: Vec<(u64, [f64; 2])> = (0..12)
            .map(|i| (i, [(i % 4) as f64 * 0.5, (i / 4) as f64 * 0.5]))
            .chain((20..24).map(|i| (i, [50.0 + (i % 4) as f64 * 0.5, 0.0])))
            .collect();
        let b = batch(&pts, &[]);
        let mut rtree: Disc<2> = Disc::new(DiscConfig::new(1.0, 3));
        let mut curve: Disc<2, disc_index::CurveIndex<2>> =
            Disc::with_index(DiscConfig::new(1.0, 3));
        assert_eq!(curve.backend_name(), "curve");
        rtree.apply(&b);
        curve.apply(&b);
        assert_eq!(rtree.assignments(), curve.assignments());
        assert_eq!(rtree.num_clusters(), curve.num_clusters());
        curve.check_invariants();
    }
}
