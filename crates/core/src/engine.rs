//! The public `Disc` engine.

use crate::config::DiscConfig;
use crate::dsu::Dsu;
use crate::label::{ClusterId, PointLabel};
use crate::record::PointRecord;
use crate::stats::SlideStats;
use crate::store::PointStore;
use disc_geom::{FxHashMap, FxHashSet, Point, PointId};
use disc_index::RTree;
use disc_window::SlideBatch;

/// An incremental DBSCAN-equivalent clusterer for sliding windows.
///
/// Feed it the [`SlideBatch`]es produced by
/// [`disc_window::SlidingWindow`]; after every [`apply`] the engine holds
/// the exact density-based clustering of the current window.
///
/// See the crate docs for an end-to-end example.
///
/// [`apply`]: Disc::apply
pub struct Disc<const D: usize> {
    pub(crate) cfg: DiscConfig,
    /// Per-point state, keyed by arrival id. After each `apply` this holds
    /// exactly the points of the current window.
    pub(crate) points: PointStore<D>,
    /// Spatial index over the window (plus `C_out` ghosts mid-slide).
    pub(crate) tree: RTree<D>,
    /// Union-find over cluster ids; the canonical id is the root.
    pub(crate) clusters: Dsu,
    /// Non-core points whose adopter was invalidated this slide; resolved
    /// by the final adoption pass.
    pub(crate) needs_adoption: FxHashSet<PointId>,
    /// Points whose `n_ε` changed this slide (candidate ex-/neo-cores).
    pub(crate) touched: FxHashSet<PointId>,
    last_stats: SlideStats,
}

impl<const D: usize> Disc<D> {
    /// Creates an engine with an empty window.
    pub fn new(cfg: DiscConfig) -> Self {
        Disc {
            cfg,
            points: PointStore::new(),
            tree: RTree::new(),
            clusters: Dsu::new(),
            needs_adoption: FxHashSet::default(),
            touched: FxHashSet::default(),
            last_stats: SlideStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DiscConfig {
        &self.cfg
    }

    /// Number of points in the current window.
    pub fn window_len(&self) -> usize {
        self.points.len()
    }

    /// Statistics of the most recent [`apply`](Disc::apply).
    pub fn last_stats(&self) -> &SlideStats {
        &self.last_stats
    }

    /// Cumulative index statistics (range searches etc.).
    pub fn index_stats(&self) -> &disc_index::Stats {
        self.tree.stats()
    }

    /// Advances the window by one slide: retires `batch.outgoing`, admits
    /// `batch.incoming`, and updates the clustering so it matches a
    /// from-scratch DBSCAN of the new window.
    ///
    /// Panics if an outgoing id is not in the window or an incoming id is
    /// already present — both indicate a driver bug.
    pub fn apply(&mut self, batch: &SlideBatch<D>) -> SlideStats {
        let start = std::time::Instant::now();
        let index_before = *self.tree.stats();
        let mut stats = SlideStats {
            inserted: batch.incoming.len(),
            removed: batch.outgoing.len(),
            ..SlideStats::default()
        };

        self.touched.clear();
        self.needs_adoption.clear();

        let outcome = self.collect(batch);
        stats.ex_cores = outcome.ex_cores.len();
        stats.neo_cores = outcome.neo_cores.len();

        self.cluster(&outcome, &mut stats);

        // Freeze core status for the next slide and drop any remaining
        // bookkeeping. Ghost records were dropped by the cluster step.
        let tau = self.cfg.tau;
        for id in self.touched.drain() {
            if let Some(rec) = self.points.get_mut(id) {
                rec.prev_core = rec.in_window && rec.n_eps as usize >= tau;
            }
        }

        stats.index = self.tree.stats().since(&index_before);
        stats.elapsed = start.elapsed();
        self.last_stats = stats;
        stats
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// Whether `id` is currently a core point.
    pub fn is_core(&self, id: PointId) -> bool {
        self.points
            .get(id)
            .map(|r| r.is_core(self.cfg.tau))
            .unwrap_or(false)
    }

    /// The label of one window point (`None` if not in the window).
    pub fn label_of(&self, id: PointId) -> Option<PointLabel> {
        let rec = self.points.get(id)?;
        Some(self.resolve_label(rec))
    }

    fn resolve_label(&self, rec: &PointRecord<D>) -> PointLabel {
        self.resolve_label_with(rec, &mut |x| self.clusters.find_immutable(x))
    }

    /// Label resolution with a pluggable root lookup, so whole-window
    /// methods can share one memoised find per call instead of walking the
    /// same union-find chains once per point.
    fn resolve_label_with(
        &self,
        rec: &PointRecord<D>,
        find: &mut impl FnMut(u32) -> u32,
    ) -> PointLabel {
        if rec.is_core(self.cfg.tau) {
            return PointLabel::Core(ClusterId(find(rec.cid.0)));
        }
        match rec.adopter {
            Some(a) => match self.points.get(a) {
                Some(core) => {
                    debug_assert!(core.is_core(self.cfg.tau), "stale adopter {a}");
                    PointLabel::Border(ClusterId(find(core.cid.0)))
                }
                None => PointLabel::Noise,
            },
            None => PointLabel::Noise,
        }
    }

    /// Labels of every window point, in unspecified order.
    pub fn labels(&self) -> Vec<(PointId, PointLabel)> {
        let mut cache = FxHashMap::default();
        self.points
            .iter()
            .map(|(id, rec)| {
                let label =
                    self.resolve_label_with(rec, &mut |x| self.clusters.find_cached(x, &mut cache));
                (id, label)
            })
            .collect()
    }

    /// `(id, cluster)` assignments sorted by arrival id, with `-1` for
    /// noise — the exchange format of the metrics crate and CSV dumps.
    pub fn assignments(&self) -> Vec<(PointId, i64)> {
        let mut cache = FxHashMap::default();
        let mut out: Vec<(PointId, i64)> = self
            .points
            .iter()
            .map(|(id, rec)| {
                let label =
                    self.resolve_label_with(rec, &mut |x| self.clusters.find_cached(x, &mut cache));
                (id, label.as_i64())
            })
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// `(point, cluster)` rows for snapshot dumps (Fig. 12).
    pub fn snapshot(&self) -> Vec<(Point<D>, i64)> {
        let mut cache = FxHashMap::default();
        let mut rows: Vec<(PointId, Point<D>, i64)> = self
            .points
            .iter()
            .map(|(id, rec)| {
                let label =
                    self.resolve_label_with(rec, &mut |x| self.clusters.find_cached(x, &mut cache));
                (id, rec.point, label.as_i64())
            })
            .collect();
        rows.sort_unstable_by_key(|(id, _, _)| *id);
        rows.into_iter().map(|(_, p, l)| (p, l)).collect()
    }

    /// Number of distinct clusters in the current window.
    pub fn num_clusters(&self) -> usize {
        let mut cache = FxHashMap::default();
        let mut roots: FxHashSet<u32> = FxHashSet::default();
        for (_, rec) in self.points.iter() {
            if rec.is_core(self.cfg.tau) {
                roots.insert(self.clusters.find_cached(rec.cid.0, &mut cache));
            }
        }
        roots.len()
    }

    /// Number of core / border / noise points (diagnostics).
    pub fn census(&self) -> (usize, usize, usize) {
        let mut cache = FxHashMap::default();
        let mut core = 0;
        let mut border = 0;
        let mut noise = 0;
        for (_, rec) in self.points.iter() {
            match self.resolve_label_with(rec, &mut |x| self.clusters.find_cached(x, &mut cache)) {
                PointLabel::Core(_) => core += 1,
                PointLabel::Border(_) => border += 1,
                PointLabel::Noise => noise += 1,
            }
        }
        (core, border, noise)
    }

    /// Validates internal invariants exhaustively — O(n · range search).
    /// Test-only helper.
    pub fn check_invariants(&mut self) {
        self.tree.check_invariants();
        assert_eq!(self.tree.len(), self.points.len(), "tree/map desync");
        let tau = self.cfg.tau;
        let eps = self.cfg.eps;
        let ids: Vec<(PointId, Point<D>)> =
            self.points.iter().map(|(id, r)| (id, r.point)).collect();
        for (id, pos) in ids {
            let n = self.tree.ball_count(&pos, eps);
            let rec = self.points.at(id);
            assert!(rec.in_window, "ghost survived the slide: {id}");
            assert_eq!(
                rec.n_eps as usize, n,
                "n_eps out of date for {id} at {pos:?}"
            );
            assert_eq!(rec.prev_core, rec.is_core(tau), "prev_core not frozen");
            if !rec.is_core(tau) {
                if let Some(a) = rec.adopter {
                    let arec = self.points.get(a).expect("adopter left the window");
                    assert!(arec.is_core(tau), "adopter of {id} is not a core");
                    assert!(
                        rec.point.within(&arec.point, eps),
                        "adopter of {id} is out of range"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_geom::Point;

    fn batch(incoming: &[(u64, [f64; 2])], outgoing: &[(u64, [f64; 2])]) -> SlideBatch<2> {
        SlideBatch {
            incoming: incoming
                .iter()
                .map(|&(i, c)| (PointId(i), Point::new(c)))
                .collect(),
            outgoing: outgoing
                .iter()
                .map(|&(i, c)| (PointId(i), Point::new(c)))
                .collect(),
        }
    }

    #[test]
    fn empty_engine_reports_empty_everything() {
        let disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 3));
        assert_eq!(disc.window_len(), 0);
        assert_eq!(disc.num_clusters(), 0);
        assert!(disc.labels().is_empty());
        assert!(disc.assignments().is_empty());
        assert!(disc.snapshot().is_empty());
        assert_eq!(disc.label_of(PointId(0)), None);
        assert!(!disc.is_core(PointId(0)));
        assert_eq!(disc.census(), (0, 0, 0));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 3));
        disc.apply(&batch(
            &[(0, [0.0, 0.0]), (1, [0.5, 0.0]), (2, [1.0, 0.0])],
            &[],
        ));
        let before = disc.assignments();
        let stats = disc.apply(&SlideBatch::default());
        assert_eq!(stats.inserted, 0);
        assert_eq!(stats.removed, 0);
        assert_eq!(disc.assignments(), before);
        disc.check_invariants();
    }

    #[test]
    fn assignments_sorted_and_snapshot_parallel() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(
            &[(5, [0.0, 0.0]), (1, [0.5, 0.0]), (9, [100.0, 0.0])],
            &[],
        ));
        let a = disc.assignments();
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
        let snap = disc.snapshot();
        assert_eq!(snap.len(), 3);
        // Snapshot rows follow the same id order: row 0 = id 1 at (0.5, 0).
        assert_eq!(snap[0].0, Point::new([0.5, 0.0]));
        assert_eq!(snap[0].1, a[0].1);
    }

    #[test]
    fn last_stats_reflects_latest_apply() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[(0, [0.0, 0.0]), (1, [0.5, 0.0])], &[]));
        let s = disc.apply(&batch(&[(2, [1.0, 0.0])], &[(0, [0.0, 0.0])]));
        assert_eq!(disc.last_stats(), &s);
        assert_eq!(s.inserted, 1);
        assert_eq!(s.removed, 1);
    }

    #[test]
    #[should_panic(expected = "not in the window")]
    fn removing_unknown_point_panics() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[], &[(7, [0.0, 0.0])]));
    }

    #[test]
    fn cumulative_index_stats_grow() {
        let mut disc: Disc<2> = Disc::new(DiscConfig::new(1.0, 2));
        disc.apply(&batch(&[(0, [0.0, 0.0])], &[]));
        let first = disc.index_stats().range_searches;
        disc.apply(&batch(&[(1, [0.5, 0.0])], &[]));
        assert!(disc.index_stats().range_searches > first);
    }
}
