//! K-distance parameter estimation.
//!
//! The paper sets (ε, τ) per dataset "based on a K-distance graph" (Ester
//! et al. '96, Schubert et al. '17, cited as the Table II methodology): plot
//! every point's distance to its k-th nearest neighbour in descending
//! order; the curve's knee separates noise (large k-distances) from cluster
//! interiors (small ones) and is a good ε. This module implements that
//! procedure over a sample of a stream, plus the companion heuristic the
//! paper uses for DTG (τ = average number of in-range neighbours at the
//! chosen ε).

use disc_geom::{Point, PointId};
use disc_index::RTree;
use disc_window::Record;

/// Result of parameter estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Suggested distance threshold ε.
    pub eps: f64,
    /// Suggested density threshold τ (self-inclusive), paired to `eps`.
    pub tau: usize,
    /// The k used for the K-distance curve.
    pub k: usize,
}

/// Sorted (descending) k-distance curve over `records` (or a sample of at
/// most `max_sample` of them, evenly spaced).
pub fn kdistance_curve<const D: usize>(
    records: &[Record<D>],
    k: usize,
    max_sample: usize,
) -> Vec<f64> {
    assert!(k >= 1, "k must be at least 1");
    let step = (records.len() / max_sample.max(1)).max(1);
    let sample: Vec<(PointId, Point<D>)> = records
        .iter()
        .step_by(step)
        .enumerate()
        .map(|(i, r)| (PointId(i as u64), r.point))
        .collect();
    let mut tree = RTree::bulk_load(sample.clone());
    let mut dists: Vec<f64> = sample
        .iter()
        .filter_map(|(_, p)| tree.kth_distance(p, k + 1)) // +1: self is nearest
        .collect();
    dists.sort_by(|a, b| b.total_cmp(a));
    dists
}

/// The knee of a descending curve by the maximum-distance-to-chord rule:
/// the index whose point is farthest from the straight line connecting the
/// curve's endpoints.
pub fn knee_index(curve: &[f64]) -> usize {
    if curve.len() < 3 {
        return curve.len() / 2;
    }
    let n = (curve.len() - 1) as f64;
    let (y0, y1) = (curve[0], curve[curve.len() - 1]);
    let mut best = 0usize;
    let mut best_d = f64::NEG_INFINITY;
    for (i, &y) in curve.iter().enumerate() {
        let x = i as f64 / n;
        // Distance from (x, y_norm) to the chord (0, 1)-(1, 0) after
        // normalising the y range.
        let y_norm = if y1 < y0 { (y - y1) / (y0 - y1) } else { 0.5 };
        let d = (1.0 - x - y_norm).abs() / std::f64::consts::SQRT_2;
        if d > best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Estimates (ε, τ) for a stream sample, following the paper's Table II
/// methodology:
///
/// 1. ε = the knee of the k-distance curve (k defaults to `2·D`, the
///    MinPts rule of thumb from Ester et al.);
/// 2. τ = the average self-inclusive number of ε-neighbours, the rule the
///    paper uses for DTG's density threshold.
/// ```
/// use disc_core::kdistance;
/// use disc_window::datasets;
///
/// let stream = datasets::gaussian_blobs::<2>(2_000, 3, 0.5, 7);
/// let est = kdistance::estimate(&stream, 500);
/// assert!(est.eps > 0.0 && est.tau >= 2);
/// ```
pub fn estimate<const D: usize>(records: &[Record<D>], max_sample: usize) -> Estimate {
    let k = 2 * D;
    let curve = kdistance_curve(records, k, max_sample);
    assert!(!curve.is_empty(), "cannot estimate from an empty stream");
    let eps = curve[knee_index(&curve)].max(f64::MIN_POSITIVE);

    // τ: mean ε-neighbour count over the same sample.
    let step = (records.len() / max_sample.max(1)).max(1);
    let sample: Vec<(PointId, Point<D>)> = records
        .iter()
        .step_by(step)
        .enumerate()
        .map(|(i, r)| (PointId(i as u64), r.point))
        .collect();
    let mut tree = RTree::bulk_load(sample.clone());
    let total: usize = sample.iter().map(|(_, p)| tree.ball_count(p, eps)).sum();
    let tau = (total as f64 / sample.len() as f64).round().max(2.0) as usize;
    Estimate { eps, tau, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_window::datasets;

    #[test]
    fn curve_is_descending_and_sized() {
        let recs = datasets::gaussian_blobs::<2>(600, 3, 0.5, 5);
        let curve = kdistance_curve(&recs, 4, 300);
        assert!(curve.len() >= 290 && curve.len() <= 300);
        for w in curve.windows(2) {
            assert!(w[0] >= w[1], "curve must be non-increasing");
        }
    }

    #[test]
    fn knee_finds_the_bend_of_a_hockey_stick() {
        // 20 noise values descending from 10, then 200 values near 1.
        let mut curve: Vec<f64> = (0..20).map(|i| 10.0 - 0.2 * i as f64).collect();
        curve.extend((0..200).map(|i| 1.0 - 0.001 * i as f64));
        let knee = knee_index(&curve);
        assert!(
            (10..40).contains(&knee),
            "knee at {knee}, expected near the bend"
        );
    }

    #[test]
    fn knee_degenerate_inputs() {
        assert_eq!(knee_index(&[]), 0);
        assert_eq!(knee_index(&[1.0]), 0);
        assert_eq!(knee_index(&[2.0, 1.0]), 1);
    }

    #[test]
    fn estimate_separates_blobs_from_noise() {
        // Dense blobs + sparse noise: ε must be large enough to hold blob
        // interiors together and far below the noise spacing.
        let mut recs = datasets::gaussian_blobs::<2>(1500, 3, 0.4, 11);
        recs.extend(datasets::uniform::<2>(150, 60.0, 13));
        let est = estimate(&recs, 800);
        assert!(est.eps > 0.05 && est.eps < 8.0, "eps = {}", est.eps);
        assert!(est.tau >= 2, "tau = {}", est.tau);

        // The estimate must actually work: DISC with it finds the 3 blobs.
        use crate::{Disc, DiscConfig};
        use disc_window::SlidingWindow;
        let mut w = SlidingWindow::new(recs, 600, 120);
        let mut disc = Disc::new(DiscConfig::new(est.eps, est.tau));
        disc.apply(&w.fill());
        while let Some(b) = w.advance() {
            disc.apply(&b);
        }
        let clusters = disc.num_clusters();
        assert!(
            (3..=12).contains(&clusters),
            "expected a handful of clusters, got {clusters}"
        );
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = kdistance_curve::<2>(&[], 0, 10);
    }
}
