//! Hand-crafted cluster-evolution scenarios (the §III-C taxonomy).
//!
//! Each test drives one specific evolution type — emergence, expansion,
//! shrink, dissipation, split, merger — with explicit geometry, and asserts
//! both the resulting labels and the per-slide [`SlideStats`] counters.
//!
//! Points are laid out on a line with spacing 1; ε = 1.2 connects
//! neighbours, τ = 3 (self-inclusive) makes interior line points cores.
//!
//! [`SlideStats`]: disc_core::SlideStats

use disc_core::{Disc, DiscConfig, PointLabel};
use disc_geom::{Point, PointId};
use disc_window::SlideBatch;

const EPS: f64 = 1.2;
const TAU: usize = 3;

fn p(x: f64) -> Point<2> {
    Point::new([x, 0.0])
}

fn batch(incoming: &[(u64, f64)], outgoing: &[(u64, f64)]) -> SlideBatch<2> {
    SlideBatch {
        incoming: incoming.iter().map(|&(i, x)| (PointId(i), p(x))).collect(),
        outgoing: outgoing.iter().map(|&(i, x)| (PointId(i), p(x))).collect(),
    }
}

fn cluster_of(disc: &Disc<2>, id: u64) -> i64 {
    disc.label_of(PointId(id))
        .expect("point in window")
        .as_i64()
}

#[test]
fn emergence_of_a_new_cluster() {
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    // Two isolated points: both noise.
    let stats = disc.apply(&batch(&[(0, 0.0), (1, 50.0)], &[]));
    assert_eq!(stats.emerged, 0);
    assert_eq!(disc.num_clusters(), 0);
    assert_eq!(disc.label_of(PointId(0)), Some(PointLabel::Noise));

    // A third point near the first turns the trio... still only 2 within
    // eps of each other: 0 at 0.0, 2 at 1.0 → each has n=2 < 3. Add both.
    let stats = disc.apply(&batch(&[(2, 1.0), (3, 0.5)], &[]));
    assert_eq!(stats.emerged, 1, "one cluster must emerge");
    assert_eq!(disc.num_clusters(), 1);
    // 0, 2, 3 all within eps of each other → all cores.
    let c = cluster_of(&disc, 0);
    assert!(c >= 0);
    assert_eq!(cluster_of(&disc, 2), c);
    assert_eq!(cluster_of(&disc, 3), c);
    assert_eq!(disc.label_of(PointId(1)), Some(PointLabel::Noise));
}

#[test]
fn expansion_keeps_the_cluster_id() {
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    disc.apply(&batch(&[(0, 0.0), (1, 1.0), (2, 2.0)], &[]));
    let before = cluster_of(&disc, 1);
    assert!(before >= 0);

    // Extend the line: the cluster grows, no split/merge/emergence.
    let stats = disc.apply(&batch(&[(3, 3.0), (4, 4.0)], &[]));
    assert_eq!(stats.emerged, 0);
    assert_eq!(stats.merges, 0);
    assert_eq!(stats.splits, 0);
    assert_eq!(disc.num_clusters(), 1);
    assert_eq!(cluster_of(&disc, 4), before, "expansion keeps the id");
}

#[test]
fn shrink_keeps_the_cluster_id() {
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    disc.apply(&batch(
        &[(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)],
        &[],
    ));
    let before = cluster_of(&disc, 2);

    let stats = disc.apply(&batch(&[], &[(4, 4.0)]));
    assert_eq!(stats.splits, 0, "losing an endpoint only shrinks");
    assert_eq!(disc.num_clusters(), 1);
    assert_eq!(cluster_of(&disc, 1), before, "shrink keeps the id");
    // Point 3 lost core status (neighbours: 2,3 → n=2) but stays a border
    // of the surviving cluster.
    assert!(matches!(
        disc.label_of(PointId(3)),
        Some(PointLabel::Border(_))
    ));
}

#[test]
fn dissipation_clears_everything() {
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    disc.apply(&batch(&[(0, 0.0), (1, 1.0), (2, 2.0)], &[]));
    assert_eq!(disc.num_clusters(), 1);
    let stats = disc.apply(&batch(&[], &[(1, 1.0)]));
    // Remaining points 0 and 2 are 2.0 apart: no cores left.
    assert_eq!(disc.num_clusters(), 0, "{stats:?}");
    assert_eq!(disc.label_of(PointId(0)), Some(PointLabel::Noise));
    assert_eq!(disc.label_of(PointId(2)), Some(PointLabel::Noise));
}

#[test]
fn split_assigns_a_fresh_id_to_one_side() {
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    // A 7-point line; removing the middle point splits it.
    let line: Vec<(u64, f64)> = (0..7).map(|i| (i, i as f64)).collect();
    disc.apply(&batch(&line, &[]));
    assert_eq!(disc.num_clusters(), 1);
    let before = cluster_of(&disc, 0);

    let stats = disc.apply(&batch(&[], &[(3, 3.0)]));
    assert_eq!(stats.splits, 1, "removing the bridge splits the cluster");
    assert_eq!(disc.num_clusters(), 2);
    let left = cluster_of(&disc, 0);
    let right = cluster_of(&disc, 6);
    assert_ne!(left, right);
    assert!(
        left == before || right == before,
        "exactly one side keeps the old id"
    );
    // Sides are internally consistent.
    assert_eq!(cluster_of(&disc, 1), left);
    assert_eq!(cluster_of(&disc, 5), right);
}

#[test]
fn merger_unifies_ids_without_relabelling() {
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    // Two separate lines with a gap at x=3.
    let pts: Vec<(u64, f64)> = vec![(0, 0.0), (1, 1.0), (2, 2.0), (4, 4.0), (5, 5.0), (6, 6.0)];
    disc.apply(&batch(&pts, &[]));
    assert_eq!(disc.num_clusters(), 2);
    let left = cluster_of(&disc, 0);
    let right = cluster_of(&disc, 6);
    assert_ne!(left, right);

    // Insert the bridge: one merger event, one cluster, and the unified id
    // is one of the previous two (the union-find root).
    let stats = disc.apply(&batch(&[(3, 3.0)], &[]));
    assert_eq!(stats.merges, 1);
    assert_eq!(disc.num_clusters(), 1);
    let unified = cluster_of(&disc, 3);
    assert!(unified == left || unified == right);
    assert_eq!(cluster_of(&disc, 0), unified);
    assert_eq!(cluster_of(&disc, 6), unified);
}

#[test]
fn simultaneous_split_and_merge_in_one_slide() {
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    // Cluster A: line at x 0..=6; cluster B: line at x 10..=13.
    let mut pts: Vec<(u64, f64)> = (0..7).map(|i| (i, i as f64)).collect();
    pts.extend((0..4).map(|i| (10 + i, 10.0 + i as f64)));
    disc.apply(&batch(&pts, &[]));
    assert_eq!(disc.num_clusters(), 2);

    // One slide removes A's middle (split) and bridges A's right half to B
    // (merge): expect 2 clusters at the end (A-left | A-right + B).
    let stats = disc.apply(&batch(&[(20, 7.0), (21, 8.0), (22, 9.0)], &[(3, 3.0)]));
    assert!(stats.splits >= 1, "{stats:?}");
    assert!(stats.merges >= 1, "{stats:?}");
    assert_eq!(disc.num_clusters(), 2);
    assert_ne!(cluster_of(&disc, 0), cluster_of(&disc, 13));
    assert_eq!(cluster_of(&disc, 4), cluster_of(&disc, 13));
}

#[test]
fn border_attachment_follows_surviving_core() {
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    // A line plus a border hanging off one end (dist 1.1 from the endpoint
    // core, but with only 2 neighbours itself).
    disc.apply(&batch(
        &[(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0), (9, 4.1)],
        &[],
    ));
    // 3 has neighbours {2,3,9} → core; 9 has {3,9} → border.
    assert!(disc.is_core(PointId(3)));
    assert!(matches!(
        disc.label_of(PointId(9)),
        Some(PointLabel::Border(_))
    ));
    // Remove 3: 9 loses its adopter and becomes noise; 2 becomes a border.
    disc.apply(&batch(&[], &[(3, 3.0)]));
    assert_eq!(disc.label_of(PointId(9)), Some(PointLabel::Noise));
    assert!(matches!(
        disc.label_of(PointId(2)),
        Some(PointLabel::Border(_))
    ));
}

#[test]
fn ex_core_consolidation_reduces_classes() {
    // Removing two adjacent points of one dense clump must be handled as
    // one retro-reachable class (Theorem 1), not two.
    let mut disc = Disc::new(DiscConfig::new(EPS, 4));
    let clump: Vec<(u64, f64)> = (0..8).map(|i| (i, i as f64 * 0.5)).collect();
    disc.apply(&batch(&clump, &[]));
    let stats = disc.apply(&batch(&[], &[(3, 1.5), (4, 2.0)]));
    assert!(
        stats.ex_classes <= stats.ex_cores.max(1),
        "classes {} must consolidate ex-cores {}",
        stats.ex_classes,
        stats.ex_cores
    );
}

#[test]
fn stats_count_collect_population() {
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    let stats = disc.apply(&batch(&[(0, 0.0), (1, 1.0)], &[]));
    assert_eq!(stats.inserted, 2);
    assert_eq!(stats.removed, 0);
    let stats = disc.apply(&batch(&[(2, 2.0)], &[(0, 0.0)]));
    assert_eq!(stats.inserted, 1);
    assert_eq!(stats.removed, 1);
    assert_eq!(disc.window_len(), 2);
}

#[test]
fn window_len_and_census_track_population() {
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    disc.apply(&batch(&[(0, 0.0), (1, 1.0), (2, 2.0), (3, 50.0)], &[]));
    assert_eq!(disc.window_len(), 4);
    // Only the middle of the 3-point line reaches τ = 3; its two ends are
    // borders; the far point is noise.
    let (cores, borders, noise) = disc.census();
    assert_eq!(cores, 1);
    assert_eq!(borders, 2);
    assert_eq!(noise, 1);
}

#[test]
fn triple_split_in_one_slide_yields_three_ids() {
    // The multi-class scenario behind the cross-class fixup: one line cut
    // at TWO separate places in a single slide.
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    let line: Vec<(u64, f64)> = (0..13).map(|i| (i, i as f64)).collect();
    disc.apply(&batch(&line, &[]));
    assert_eq!(disc.num_clusters(), 1);
    let before = cluster_of(&disc, 6);

    let stats = disc.apply(&batch(&[], &[(3, 3.0), (9, 9.0)]));
    assert!(stats.splits >= 1, "{stats:?}");
    assert_eq!(disc.num_clusters(), 3);
    let a = cluster_of(&disc, 0);
    let b = cluster_of(&disc, 6);
    let c = cluster_of(&disc, 12);
    assert_ne!(a, b);
    assert_ne!(b, c);
    assert_ne!(a, c);
    // Exactly one of the three fragments keeps the old id.
    let keepers = [a, b, c].iter().filter(|&&x| x == before).count();
    assert_eq!(keepers, 1, "exactly one survivor may keep the old id");
}

#[test]
fn reinsertion_of_same_coordinates_with_new_ids() {
    // GPS streams repeat coordinates: make sure id-based identity works.
    let mut disc = Disc::new(DiscConfig::new(EPS, TAU));
    disc.apply(&batch(&[(0, 0.0), (1, 0.0), (2, 0.0)], &[]));
    assert_eq!(disc.num_clusters(), 1);
    disc.apply(&batch(&[(3, 0.0)], &[(0, 0.0)]));
    assert_eq!(disc.num_clusters(), 1);
    assert_eq!(disc.window_len(), 3);
    assert!(disc.is_core(PointId(3)));
}

#[test]
fn ablation_variants_agree_on_every_scenario() {
    // Re-run the split scenario under all four optimisation configs.
    for cfg in [
        DiscConfig::new(EPS, TAU),
        DiscConfig::new(EPS, TAU).without_msbfs(),
        DiscConfig::new(EPS, TAU).without_epoch_probe(),
        DiscConfig::new(EPS, TAU)
            .without_msbfs()
            .without_epoch_probe(),
    ] {
        let mut disc = Disc::new(cfg);
        let line: Vec<(u64, f64)> = (0..7).map(|i| (i, i as f64)).collect();
        disc.apply(&batch(&line, &[]));
        disc.apply(&batch(&[], &[(3, 3.0)]));
        assert_eq!(disc.num_clusters(), 2, "config {cfg:?}");
        assert_ne!(cluster_of(&disc, 0), cluster_of(&disc, 6));
    }
}
