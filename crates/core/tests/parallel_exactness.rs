//! Parallel exactness: the wide slide engine must be **bit-identical** to
//! the sequential oracle, slide by slide, at every worker width.
//!
//! The sequential path (`threads = 1`) runs the engine's original code —
//! the worker pool is bypassed entirely — so it serves as the oracle here,
//! and is itself certified DBSCAN-equivalent by `exactness.rs`. A wide
//! engine must then reproduce, for every slide:
//!
//! * the exact label vector — cluster-id choices included, not merely the
//!   induced partition;
//! * the algorithmic slide counters (ex-/neo-cores, classes, splits,
//!   merges, emergences, adoptions, MS-BFS instances/starters/rounds) and
//!   the index mutation counters (inserts/removes);
//! * the provenance event multiset.
//!
//! Deliberately *not* compared: traversal-shape index counters
//! (`nodes_visited`, `range_searches`, `epoch_probes`, …). The wide
//! COLLECT chunks the multi-ball batch and the wide MS-BFS swaps the
//! epoch-probe flavour for speculative per-ball scans, so those counters
//! measure a different — equally valid — walk over the same index. The
//! *answers* (and every mutation) must still coincide.

use disc_core::{Disc, DiscConfig, SlideStats};
use disc_index::{CurveIndex, GridIndex, RTree, SpatialBackend};
use disc_telemetry::{MemoryProvenanceSink, ProvenanceEvent, ProvenanceSink, Registry};
use disc_window::{datasets, Record, SlidingWindow};
use proptest::prelude::*;
use std::sync::Arc;

struct Fwd(Arc<MemoryProvenanceSink>);
impl ProvenanceSink for Fwd {
    fn emit(&self, ev: &ProvenanceEvent) {
        self.0.emit(ev);
    }
}

fn instrumented<const D: usize, B: SpatialBackend<D>>(
    cfg: DiscConfig,
) -> (Disc<D, B>, Arc<MemoryProvenanceSink>) {
    let sink = Arc::new(MemoryProvenanceSink::new());
    let reg = Arc::new(Registry::new().with_provenance(Box::new(Fwd(sink.clone()))));
    (Disc::with_index(cfg).with_recorder(reg), sink)
}

/// The slide counters that describe *what the algorithm decided*, as
/// opposed to how the index happened to be walked.
fn algo_sig(s: &SlideStats) -> [u64; 15] {
    [
        s.inserted as u64,
        s.removed as u64,
        s.ex_cores as u64,
        s.neo_cores as u64,
        s.ex_classes as u64,
        s.neo_classes as u64,
        s.splits as u64,
        s.merges as u64,
        s.emerged as u64,
        s.adoption_searches as u64,
        s.msbfs_instances as u64,
        s.msbfs_starters as u64,
        s.msbfs_rounds as u64,
        s.index.inserts,
        s.index.removes,
    ]
}

/// The provenance stream as a canonical multiset (sorted JSONL lines).
fn prov_multiset(sink: &MemoryProvenanceSink) -> Vec<String> {
    let mut lines: Vec<String> = sink.events().iter().map(|e| e.to_jsonl()).collect();
    lines.sort_unstable();
    lines
}

/// Drives one sequential engine and one wide engine per width in lockstep
/// over the stream, asserting bit-identity after every slide.
fn lockstep<const D: usize, B: SpatialBackend<D>>(
    records: Vec<Record<D>>,
    window: usize,
    stride: usize,
    eps: f64,
    tau: usize,
    widths: &[usize],
    tag: &str,
) {
    let (mut oracle, oracle_sink) = instrumented::<D, B>(DiscConfig::new(eps, tau).with_threads(1));
    let mut wide: Vec<(usize, Disc<D, B>, Arc<MemoryProvenanceSink>)> = widths
        .iter()
        .map(|&t| {
            let (d, s) = instrumented::<D, B>(DiscConfig::new(eps, tau).with_threads(t));
            assert_eq!(d.worker_width(), t);
            (t, d, s)
        })
        .collect();

    let mut w = SlidingWindow::new(records, window, stride);
    let mut slide = 0u64;
    let mut batch = Some(w.fill());
    while let Some(b) = batch {
        slide += 1;
        let want = algo_sig(&oracle.apply(&b));
        for (t, d, sink) in &mut wide {
            let got = algo_sig(&d.apply(&b));
            assert_eq!(
                got, want,
                "{tag}: slide {slide} counters diverged at width {t}"
            );
            assert_eq!(
                d.labels(),
                oracle.labels(),
                "{tag}: slide {slide} labels diverged at width {t}"
            );
            assert_eq!(
                d.assignments(),
                oracle.assignments(),
                "{tag}: slide {slide} assignments diverged at width {t}"
            );
            assert_eq!(
                prov_multiset(sink),
                prov_multiset(&oracle_sink),
                "{tag}: slide {slide} provenance diverged at width {t}"
            );
            d.check_invariants();
        }
        oracle.check_invariants();
        batch = w.advance();
    }
    assert!(slide > 3, "{tag}: stream too short to exercise evolution");
}

/// All three backends, all widths, one dataset.
fn lockstep_both<const D: usize>(
    records: Vec<Record<D>>,
    window: usize,
    stride: usize,
    eps: f64,
    tau: usize,
    tag: &str,
) {
    let widths = [2usize, 4, 8];
    lockstep::<D, RTree<D>>(
        records.clone(),
        window,
        stride,
        eps,
        tau,
        &widths,
        &format!("{tag}/rtree"),
    );
    lockstep::<D, GridIndex<D>>(
        records.clone(),
        window,
        stride,
        eps,
        tau,
        &widths,
        &format!("{tag}/grid"),
    );
    lockstep::<D, CurveIndex<D>>(
        records,
        window,
        stride,
        eps,
        tau,
        &widths,
        &format!("{tag}/curve"),
    );
}

// The five fixed datasets of the acceptance matrix: blobs (stable
// clusters), maze (splits/merges on corridors), dtg (trajectory drift),
// covid (heavy noise churn), multi-density (order-of-magnitude density
// contrast). Each runs both backends at widths {1, 2, 4, 8}.

#[test]
fn parallel_matches_sequential_on_blobs() {
    let recs = datasets::gaussian_blobs::<2>(900, 4, 0.6, 7);
    lockstep_both(recs, 250, 60, 1.0, 5, "blobs");
}

#[test]
fn parallel_matches_sequential_on_maze() {
    let recs = datasets::maze(900, 12, 3);
    lockstep_both(recs, 250, 60, 0.6, 5, "maze");
}

#[test]
fn parallel_matches_sequential_on_dtg() {
    let recs = datasets::dtg_like(900, 5);
    lockstep_both(recs, 300, 75, 0.6, 4, "dtg");
}

#[test]
fn parallel_matches_sequential_on_covid() {
    let recs = datasets::covid_like(900, 11);
    lockstep_both(recs, 250, 50, 1.2, 5, "covid");
}

#[test]
fn parallel_matches_sequential_on_multi_density() {
    let recs = datasets::multi_density::<2>(900, 3, 47);
    lockstep_both(recs, 300, 80, 0.8, 4, "multi_density");
}

/// Higher dimensions exercise different ball geometries (and the 4-D grid
/// cells are much coarser relative to ε).
#[test]
fn parallel_matches_sequential_in_3d_and_4d() {
    lockstep_both(
        datasets::geolife_like(700, 17),
        250,
        60,
        1.0,
        5,
        "geolife3d",
    );
    lockstep_both(datasets::iris_like(700, 13), 250, 60, 2.0, 5, "iris4d");
}

/// Full-turnover and tiny-stride edges: stride == window rebuilds the
/// whole population every slide (COLLECT dominates); stride ≪ window
/// maximises incremental churn (CLUSTER + adoption dominate).
#[test]
fn parallel_matches_sequential_at_stride_extremes() {
    let recs = datasets::gaussian_blobs::<2>(700, 3, 0.5, 41);
    lockstep_both(recs.clone(), 175, 175, 1.0, 5, "turnover");
    lockstep_both(recs, 200, 10, 1.0, 5, "tiny_stride");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomised streams (clusters + heavy uniform noise in a small box,
    /// so splits and merges fire constantly), random ε/τ/window/stride and
    /// a random width: the wide engine must stay in bit-identical lockstep
    /// with the sequential oracle on both backends.
    #[test]
    fn random_streams_are_width_invariant(
        seed in 0u64..5000,
        eps in 0.6..2.0f64,
        tau in 2usize..6,
        window in 60usize..160,
        stride_frac in 1usize..10,
        width in 2usize..9,
    ) {
        let stride = (window * stride_frac / 10).max(1);
        let mut recs = datasets::gaussian_blobs::<2>(400, 3, 1.0, seed);
        let noise = datasets::uniform::<2>(100, 25.0, seed ^ 0xdead);
        for (i, n) in noise.into_iter().enumerate() {
            recs.insert((i * 5) % recs.len(), n);
        }
        let widths = [width];
        lockstep::<2, RTree<2>>(
            recs.clone(), window, stride, eps, tau, &widths, "prop/rtree",
        );
        lockstep::<2, GridIndex<2>>(
            recs.clone(), window, stride, eps, tau, &widths, "prop/grid",
        );
        lockstep::<2, CurveIndex<2>>(
            recs, window, stride, eps, tau, &widths, "prop/curve",
        );
    }
}

/// Width 0 resolves to the host's parallelism; whatever that is, the
/// result must match the oracle (the lockstep above pins explicit widths,
/// this pins the auto path end to end).
#[test]
fn auto_width_matches_sequential() {
    let recs = datasets::gaussian_blobs::<2>(600, 3, 0.6, 23);
    let mut w = SlidingWindow::new(recs, 200, 50);
    let mut seq: Disc<2> = Disc::new(DiscConfig::new(1.0, 5).with_threads(1));
    let mut auto: Disc<2> = Disc::new(DiscConfig::new(1.0, 5).with_threads(0));
    assert!(auto.worker_width() >= 1);
    let fill = w.fill();
    seq.apply(&fill);
    auto.apply(&fill);
    assert_eq!(seq.assignments(), auto.assignments());
    while let Some(b) = w.advance() {
        seq.apply(&b);
        auto.apply(&b);
        assert_eq!(seq.assignments(), auto.assignments());
    }
}
