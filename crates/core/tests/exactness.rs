//! DISC exactness: after every slide, the clustering must be equivalent to
//! running DBSCAN from scratch on the current window.
//!
//! The oracle here is a deliberately naive O(n²) DBSCAN, independent of all
//! the machinery under test (no R-tree, no incremental state).

use disc_core::{Disc, DiscConfig, PointLabel};
use disc_geom::{Point, PointId};
use disc_index::{CurveIndex, GridIndex, SpatialBackend};
use disc_window::{datasets, Record, SlidingWindow};
use proptest::prelude::*;

/// Naive DBSCAN: returns, for every input point, `Core(comp)`,
/// `Border(comp)`, or `Noise`, where `comp` is an arbitrary but consistent
/// component number of the core graph.
fn naive_dbscan<const D: usize>(
    pts: &[(PointId, Point<D>)],
    eps: f64,
    tau: usize,
) -> Vec<(PointId, NaiveLabel)> {
    let n = pts.len();
    let mut neigh: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if pts[i].1.within(&pts[j].1, eps) {
                neigh[i].push(j); // includes i itself
            }
        }
    }
    let is_core: Vec<bool> = (0..n).map(|i| neigh[i].len() >= tau).collect();
    // Components of the core graph.
    let mut comp: Vec<Option<usize>> = vec![None; n];
    let mut next = 0usize;
    for s in 0..n {
        if !is_core[s] || comp[s].is_some() {
            continue;
        }
        let c = next;
        next += 1;
        let mut stack = vec![s];
        comp[s] = Some(c);
        while let Some(u) = stack.pop() {
            for &v in &neigh[u] {
                if is_core[v] && comp[v].is_none() {
                    comp[v] = Some(c);
                    stack.push(v);
                }
            }
        }
    }
    (0..n)
        .map(|i| {
            let label = if is_core[i] {
                NaiveLabel::Core(comp[i].unwrap())
            } else {
                // Border candidates: all clusters with a core in range.
                let mut cands: Vec<usize> = neigh[i]
                    .iter()
                    .filter(|&&j| is_core[j])
                    .map(|&j| comp[j].unwrap())
                    .collect();
                cands.sort_unstable();
                cands.dedup();
                if cands.is_empty() {
                    NaiveLabel::Noise
                } else {
                    NaiveLabel::Border(cands)
                }
            };
            (pts[i].0, label)
        })
        .collect()
}

#[derive(Debug, Clone, PartialEq)]
enum NaiveLabel {
    Core(usize),
    /// DBSCAN leaves multi-cluster borders ambiguous: any listed component
    /// is a legal assignment.
    Border(Vec<usize>),
    Noise,
}

/// Asserts DBSCAN-equivalence of DISC's current labelling.
fn assert_equivalent<const D: usize, B: SpatialBackend<D>>(
    disc: &Disc<D, B>,
    window: &[(PointId, Point<D>)],
) {
    let cfg = *disc.config();
    let oracle = naive_dbscan(window, cfg.eps, cfg.tau);
    let got: std::collections::BTreeMap<PointId, PointLabel> = disc.labels().into_iter().collect();
    assert_eq!(got.len(), window.len(), "window population mismatch");

    // Map DISC cluster ids <-> oracle component ids via the cores:
    // the correspondence must be a bijection.
    let mut disc_to_naive: std::collections::BTreeMap<u32, usize> = Default::default();
    let mut naive_to_disc: std::collections::BTreeMap<usize, u32> = Default::default();
    for (id, naive) in &oracle {
        let mine = got
            .get(id)
            .unwrap_or_else(|| panic!("{id} missing from DISC"));
        match (naive, mine) {
            (NaiveLabel::Core(c), PointLabel::Core(d)) => {
                if let Some(prev) = disc_to_naive.insert(d.0, *c) {
                    assert_eq!(prev, *c, "DISC cluster {d} spans oracle components");
                }
                if let Some(prev) = naive_to_disc.insert(*c, d.0) {
                    assert_eq!(prev, d.0, "oracle component {c} split across DISC ids");
                }
            }
            (NaiveLabel::Core(_), other) => {
                panic!("{id} must be a core, DISC says {other:?}")
            }
            (NaiveLabel::Border(cands), PointLabel::Border(d)) => {
                // The assigned cluster must correspond to one of the legal
                // components. (Checked after the core bijection is built,
                // see below — record for the second pass.)
                let _ = (cands, d);
            }
            (NaiveLabel::Border(_), other) => {
                panic!("{id} must be a border, DISC says {other:?}")
            }
            (NaiveLabel::Noise, PointLabel::Noise) => {}
            (NaiveLabel::Noise, other) => {
                panic!("{id} must be noise, DISC says {other:?}")
            }
        }
    }
    // Second pass: border assignments must map to a legal component.
    for (id, naive) in &oracle {
        if let NaiveLabel::Border(cands) = naive {
            if let PointLabel::Border(d) = got[id] {
                let mapped = disc_to_naive
                    .get(&d.0)
                    .unwrap_or_else(|| panic!("border {id} assigned to coreless cluster {d}"));
                assert!(
                    cands.contains(mapped),
                    "border {id} assigned to cluster {d} (oracle comp {mapped}), legal: {cands:?}"
                );
            }
        }
    }
}

fn run_stream_on<const D: usize, B: SpatialBackend<D>>(
    records: Vec<Record<D>>,
    window: usize,
    stride: usize,
    eps: f64,
    tau: usize,
    cfg_mod: impl Fn(DiscConfig) -> DiscConfig,
) {
    let mut w = SlidingWindow::new(records, window, stride);
    let mut disc: Disc<D, B> = Disc::with_index(cfg_mod(DiscConfig::new(eps, tau)));
    disc.apply(&w.fill());
    let snapshot: Vec<(PointId, Point<D>)> = w.current().collect();
    assert_equivalent(&disc, &snapshot);
    disc.check_invariants();
    while let Some(batch) = w.advance() {
        disc.apply(&batch);
        let snapshot: Vec<(PointId, Point<D>)> = w.current().collect();
        assert_equivalent(&disc, &snapshot);
        disc.check_invariants();
    }
}

fn run_stream<const D: usize>(
    records: Vec<Record<D>>,
    window: usize,
    stride: usize,
    eps: f64,
    tau: usize,
    cfg_mod: impl Fn(DiscConfig) -> DiscConfig,
) {
    run_stream_on::<D, disc_index::RTree<D>>(records, window, stride, eps, tau, cfg_mod);
}

#[test]
fn blobs_stream_is_exact() {
    let recs = datasets::gaussian_blobs::<2>(1200, 4, 0.6, 7);
    run_stream(recs, 300, 60, 1.0, 5, |c| c);
}

#[test]
fn maze_stream_is_exact() {
    let recs = datasets::maze(1500, 12, 3);
    run_stream(recs, 400, 80, 0.6, 5, |c| c);
}

#[test]
fn dtg_stream_is_exact() {
    let recs = datasets::dtg_like(1500, 5);
    run_stream(recs, 500, 100, 0.6, 4, |c| c);
}

#[test]
fn covid_stream_is_exact_with_heavy_noise() {
    let recs = datasets::covid_like(1200, 11);
    run_stream(recs, 400, 50, 1.2, 5, |c| c);
}

#[test]
fn iris_4d_stream_is_exact() {
    let recs = datasets::iris_like(900, 13);
    run_stream(recs, 300, 60, 2.0, 5, |c| c);
}

#[test]
fn geolife_3d_stream_is_exact() {
    let recs = datasets::geolife_like(900, 17);
    run_stream(recs, 300, 60, 1.0, 5, |c| c);
}

#[test]
fn exactness_holds_without_msbfs() {
    let recs = datasets::maze(1000, 10, 23);
    run_stream(recs, 300, 60, 0.6, 5, |c| c.without_msbfs());
}

#[test]
fn exactness_holds_without_epoch_probe() {
    let recs = datasets::maze(1000, 10, 29);
    run_stream(recs, 300, 60, 0.6, 5, |c| c.without_epoch_probe());
}

#[test]
fn exactness_holds_without_bulk_slide() {
    let recs = datasets::maze(1000, 10, 37);
    run_stream(recs, 300, 60, 0.6, 5, |c| c.without_bulk_slide());
}

#[test]
fn exactness_holds_without_any_optimisation() {
    let recs = datasets::maze(1000, 10, 31);
    run_stream(recs, 300, 60, 0.6, 5, |c| {
        c.without_msbfs().without_epoch_probe().without_bulk_slide()
    });
}

/// The batched and per-point slide paths must not merely both be
/// DBSCAN-equivalent — they must produce identical assignments slide by
/// slide (cluster-id choices included), since they implement the same
/// algorithm with only the traversal order changed.
#[test]
fn batched_and_per_point_paths_agree_exactly() {
    for (window, stride) in [(300, 30), (300, 150), (200, 200), (240, 7)] {
        let mut recs = datasets::gaussian_blobs::<2>(900, 3, 0.8, 59);
        let noise = datasets::uniform::<2>(150, 25.0, 61);
        for (i, n) in noise.into_iter().enumerate() {
            recs.insert((i * 5) % recs.len(), n);
        }
        let mut w = SlidingWindow::new(recs, window, stride);
        let mut batched = Disc::new(DiscConfig::new(0.9, 4));
        let mut per_point = Disc::new(DiscConfig::new(0.9, 4).without_bulk_slide());
        let fill = w.fill();
        batched.apply(&fill);
        per_point.apply(&fill);
        loop {
            assert_eq!(
                batched.assignments(),
                per_point.assignments(),
                "paths diverged at window={window} stride={stride}"
            );
            match w.advance() {
                Some(batch) => {
                    batched.apply(&batch);
                    per_point.apply(&batch);
                }
                None => break,
            }
        }
    }
}

/// The grid backend must satisfy the same oracle lockstep as the R-tree on
/// a mixed workload (blobs + maze + heavy noise styles), slide by slide.
#[test]
fn grid_backend_blobs_stream_is_exact() {
    let recs = datasets::gaussian_blobs::<2>(1200, 4, 0.6, 7);
    run_stream_on::<2, GridIndex<2>>(recs, 300, 60, 1.0, 5, |c| c);
}

#[test]
fn grid_backend_maze_stream_is_exact() {
    let recs = datasets::maze(1500, 12, 3);
    run_stream_on::<2, GridIndex<2>>(recs, 400, 80, 0.6, 5, |c| c);
}

#[test]
fn grid_backend_covid_stream_is_exact_with_heavy_noise() {
    let recs = datasets::covid_like(1200, 11);
    run_stream_on::<2, GridIndex<2>>(recs, 400, 50, 1.2, 5, |c| c);
}

#[test]
fn grid_backend_iris_4d_stream_is_exact() {
    let recs = datasets::iris_like(900, 13);
    run_stream_on::<4, GridIndex<4>>(recs, 300, 60, 2.0, 5, |c| c);
}

#[test]
fn grid_backend_exact_without_any_optimisation() {
    let recs = datasets::maze(1000, 10, 31);
    run_stream_on::<2, GridIndex<2>>(recs, 300, 60, 0.6, 5, |c| {
        c.without_msbfs().without_epoch_probe().without_bulk_slide()
    });
}

/// Backend agreement on a fixed mixed workload: for every slide of the
/// stream, grid-backend clustering == R-tree-backend clustering (ids
/// included) == from-scratch DBSCAN (via each backend's own oracle run
/// above; here the two engines are compared directly).
#[test]
fn grid_and_rtree_backends_agree_exactly() {
    for (window, stride) in [(300, 30), (300, 150), (200, 200)] {
        let mut recs = datasets::gaussian_blobs::<2>(900, 3, 0.8, 59);
        let noise = datasets::uniform::<2>(150, 25.0, 61);
        for (i, n) in noise.into_iter().enumerate() {
            recs.insert((i * 5) % recs.len(), n);
        }
        let mut w = SlidingWindow::new(recs, window, stride);
        let mut rtree: Disc<2> = Disc::new(DiscConfig::new(0.9, 4));
        let mut grid: Disc<2, GridIndex<2>> = Disc::with_index(DiscConfig::new(0.9, 4));
        let fill = w.fill();
        rtree.apply(&fill);
        grid.apply(&fill);
        loop {
            assert_eq!(
                rtree.assignments(),
                grid.assignments(),
                "backends diverged at window={window} stride={stride}"
            );
            let snapshot: Vec<(PointId, Point<2>)> = w.current().collect();
            assert_equivalent(&grid, &snapshot);
            match w.advance() {
                Some(batch) => {
                    rtree.apply(&batch);
                    grid.apply(&batch);
                }
                None => break,
            }
        }
    }
}

/// The curve backend must satisfy the same oracle lockstep as the R-tree
/// across the five datasets, including 3D and 4D instantiations.
#[test]
fn curve_backend_blobs_stream_is_exact() {
    let recs = datasets::gaussian_blobs::<2>(1200, 4, 0.6, 7);
    run_stream_on::<2, CurveIndex<2>>(recs, 300, 60, 1.0, 5, |c| c);
}

#[test]
fn curve_backend_maze_stream_is_exact() {
    let recs = datasets::maze(1500, 12, 3);
    run_stream_on::<2, CurveIndex<2>>(recs, 400, 80, 0.6, 5, |c| c);
}

#[test]
fn curve_backend_covid_stream_is_exact_with_heavy_noise() {
    let recs = datasets::covid_like(1200, 11);
    run_stream_on::<2, CurveIndex<2>>(recs, 400, 50, 1.2, 5, |c| c);
}

#[test]
fn curve_backend_geolife_3d_stream_is_exact() {
    let recs = datasets::geolife_like(900, 17);
    run_stream_on::<3, CurveIndex<3>>(recs, 300, 60, 1.0, 5, |c| c);
}

#[test]
fn curve_backend_iris_4d_stream_is_exact() {
    let recs = datasets::iris_like(900, 13);
    run_stream_on::<4, CurveIndex<4>>(recs, 300, 60, 2.0, 5, |c| c);
}

#[test]
fn curve_backend_exact_without_any_optimisation() {
    let recs = datasets::maze(1000, 10, 31);
    run_stream_on::<2, CurveIndex<2>>(recs, 300, 60, 0.6, 5, |c| {
        c.without_msbfs().without_epoch_probe().without_bulk_slide()
    });
}

/// Three-way backend agreement on a fixed mixed workload, slide by slide
/// (ids included), with the curve engine also checked against the oracle.
#[test]
fn curve_grid_and_rtree_backends_agree_exactly() {
    for (window, stride) in [(300, 30), (300, 150), (200, 200)] {
        let mut recs = datasets::gaussian_blobs::<2>(900, 3, 0.8, 59);
        let noise = datasets::uniform::<2>(150, 25.0, 61);
        for (i, n) in noise.into_iter().enumerate() {
            recs.insert((i * 5) % recs.len(), n);
        }
        let mut w = SlidingWindow::new(recs, window, stride);
        let mut rtree: Disc<2> = Disc::new(DiscConfig::new(0.9, 4));
        let mut grid: Disc<2, GridIndex<2>> = Disc::with_index(DiscConfig::new(0.9, 4));
        let mut curve: Disc<2, CurveIndex<2>> = Disc::with_index(DiscConfig::new(0.9, 4));
        let fill = w.fill();
        rtree.apply(&fill);
        grid.apply(&fill);
        curve.apply(&fill);
        loop {
            assert_eq!(
                rtree.assignments(),
                curve.assignments(),
                "rtree/curve diverged at window={window} stride={stride}"
            );
            assert_eq!(
                grid.assignments(),
                curve.assignments(),
                "grid/curve diverged at window={window} stride={stride}"
            );
            let snapshot: Vec<(PointId, Point<2>)> = w.current().collect();
            assert_equivalent(&curve, &snapshot);
            match w.advance() {
                Some(batch) => {
                    rtree.apply(&batch);
                    grid.apply(&batch);
                    curve.apply(&batch);
                }
                None => break,
            }
        }
    }
}

#[test]
fn large_stride_full_turnover_is_exact() {
    // stride == window: every slide replaces the whole population.
    let recs = datasets::gaussian_blobs::<2>(800, 3, 0.5, 41);
    run_stream(recs, 200, 200, 1.0, 5, |c| c);
}

#[test]
fn tiny_stride_is_exact() {
    let recs = datasets::gaussian_blobs::<2>(500, 3, 0.5, 43);
    run_stream(recs, 200, 5, 1.0, 5, |c| c);
}

#[test]
fn tau_one_makes_everything_a_core() {
    let recs = datasets::uniform::<2>(300, 30.0, 3);
    run_stream(recs, 100, 20, 2.0, 1, |c| c);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The hard randomised case: clustered points plus noise in a small box
    /// so that clusters split and merge constantly as the window slides.
    #[test]
    fn random_streams_are_exact(
        seed in 0u64..5000,
        eps in 0.6..2.0f64,
        tau in 2usize..6,
        window in 60usize..160,
        stride_frac in 1usize..10,
        all_opts in prop::bool::ANY,
    ) {
        let stride = (window * stride_frac / 10).max(1);
        let mut recs = datasets::gaussian_blobs::<2>(400, 3, 1.0, seed);
        // Salt with uniform noise to exercise border/noise churn.
        let noise = datasets::uniform::<2>(100, 25.0, seed ^ 0xdead);
        for (i, n) in noise.into_iter().enumerate() {
            recs.insert((i * 5) % recs.len(), n);
        }
        let cfg_mod = move |c: DiscConfig| {
            if all_opts {
                c
            } else {
                c.without_msbfs().without_epoch_probe().without_bulk_slide()
            }
        };
        run_stream(recs, window, stride, eps, tau, cfg_mod);
    }

    /// Random slide sequences must produce identical clusterings and
    /// identical ex-/neo-core counts under the R-tree and grid backends —
    /// the backends answer the same queries, so every density decision
    /// must coincide. Assignments are compared after canonical cluster
    /// renumbering (first appearance in ascending id order): internal
    /// cluster-id *allocation* order legitimately varies with hash-set
    /// iteration, but the induced partition may not.
    #[test]
    fn backends_agree_on_random_streams(
        seed in 0u64..5000,
        eps in 0.6..2.0f64,
        tau in 2usize..6,
        window in 60usize..160,
        stride_frac in 1usize..10,
    ) {
        let stride = (window * stride_frac / 10).max(1);
        let mut recs = datasets::gaussian_blobs::<2>(400, 3, 1.0, seed);
        let noise = datasets::uniform::<2>(100, 25.0, seed ^ 0xdead);
        for (i, n) in noise.into_iter().enumerate() {
            recs.insert((i * 5) % recs.len(), n);
        }
        let mut w = SlidingWindow::new(recs, window, stride);
        let mut rtree: Disc<2> = Disc::new(DiscConfig::new(eps, tau));
        let mut grid: Disc<2, GridIndex<2>> = Disc::with_index(DiscConfig::new(eps, tau));
        let mut curve: Disc<2, CurveIndex<2>> = Disc::with_index(DiscConfig::new(eps, tau));
        let fill = w.fill();
        let sa = rtree.apply(&fill);
        let sb = grid.apply(&fill);
        let sc = curve.apply(&fill);
        prop_assert_eq!(sa.ex_cores, sb.ex_cores);
        prop_assert_eq!(sa.neo_cores, sb.neo_cores);
        prop_assert_eq!(sa.ex_cores, sc.ex_cores);
        prop_assert_eq!(sa.neo_cores, sc.neo_cores);
        prop_assert_eq!(
            canonical(&rtree.assignments()),
            canonical(&grid.assignments())
        );
        prop_assert_eq!(
            canonical(&rtree.assignments()),
            canonical(&curve.assignments())
        );
        while let Some(batch) = w.advance() {
            let sa = rtree.apply(&batch);
            let sb = grid.apply(&batch);
            let sc = curve.apply(&batch);
            prop_assert_eq!(sa.ex_cores, sb.ex_cores, "ex-cores diverged (seed {})", seed);
            prop_assert_eq!(sa.neo_cores, sb.neo_cores, "neo-cores diverged (seed {})", seed);
            prop_assert_eq!(sa.ex_cores, sc.ex_cores, "curve ex-cores diverged (seed {})", seed);
            prop_assert_eq!(sa.neo_cores, sc.neo_cores, "curve neo-cores diverged (seed {})", seed);
            prop_assert_eq!(
                canonical(&rtree.assignments()),
                canonical(&grid.assignments()),
                "partitions diverged (seed {})", seed
            );
            prop_assert_eq!(
                canonical(&rtree.assignments()),
                canonical(&curve.assignments()),
                "curve partition diverged (seed {})", seed
            );
        }
    }
}

/// Renumbers cluster ids by first appearance in ascending point-id order;
/// noise stays `-1`. Two assignment vectors are canonically equal iff they
/// induce the same partition with the same noise set.
fn canonical(assignments: &[(PointId, i64)]) -> Vec<(PointId, i64)> {
    let mut rename: std::collections::BTreeMap<i64, i64> = Default::default();
    assignments
        .iter()
        .map(|&(id, l)| {
            if l < 0 {
                (id, -1)
            } else {
                let next = rename.len() as i64;
                (id, *rename.entry(l).or_insert(next))
            }
        })
        .collect()
}

/// Regression: one previous cluster cut by several disjoint ex-core classes
/// in a single slide. Per-class connectivity checks each let their own
/// survivor keep the old cluster id, leaving two now-disconnected fragments
/// with the same id; the fix pools the M⁻ sets per previous cluster.
/// (Found by `random_streams_are_exact` at this exact configuration.)
#[test]
fn multi_class_split_keeps_one_survivor() {
    let seed = 1035u64;
    let mut recs = datasets::gaussian_blobs::<2>(400, 3, 1.0, seed);
    let noise = datasets::uniform::<2>(100, 25.0, seed ^ 0xdead);
    for (i, n) in noise.into_iter().enumerate() {
        recs.insert((i * 5) % recs.len(), n);
    }
    run_stream(recs.clone(), 135, 81, 0.6, 2, |c| {
        c.without_msbfs().without_epoch_probe()
    });
    run_stream(recs, 135, 81, 0.6, 2, |c| c);
}

/// DISC under the TIME-based window model (§II-B): bursty arrival rates
/// make slide populations swing wildly; exactness must hold regardless.
#[test]
fn time_based_window_is_exact() {
    use disc_window::timewindow::{stamp_with_gaps, TimeWindow};
    let recs = datasets::gaussian_blobs::<2>(900, 3, 0.6, 51);
    // Bursty: mostly 1-unit gaps with occasional long silences and bursts.
    let stamped = stamp_with_gaps(recs, &[1.0, 1.0, 0.05, 0.05, 0.05, 7.0, 1.0]);
    let mut w = TimeWindow::new(stamped, 120.0, 17.0);
    let mut disc = Disc::new(DiscConfig::new(1.0, 5));
    disc.apply(&w.fill());
    loop {
        let snapshot: Vec<(PointId, Point<2>)> = w.current().collect();
        assert_equivalent(&disc, &snapshot);
        disc.check_invariants();
        match w.advance() {
            Some(batch) => {
                disc.apply(&batch);
            }
            None => break,
        }
    }
}

/// Density-contrast stress: blobs whose densities differ by an order of
/// magnitude cause splits/dissipations at very different rates; exactness
/// must hold at a single (ε, τ) regardless.
#[test]
fn multi_density_stream_is_exact() {
    let recs = datasets::multi_density::<2>(1200, 3, 47);
    run_stream(recs, 400, 80, 0.8, 4, |c| c);
}

/// The materialised-graph strawman must stay in lockstep with DISC on
/// randomised streams (noise flags and cluster counts per slide).
#[test]
fn graph_disc_matches_disc_on_random_streams() {
    use disc_core::GraphDisc;
    for seed in [7u64, 1035, 4242] {
        let mut recs = datasets::gaussian_blobs::<2>(600, 3, 1.0, seed);
        let noise = datasets::uniform::<2>(150, 25.0, seed ^ 0xbeef);
        for (i, n) in noise.into_iter().enumerate() {
            recs.insert((i * 5) % recs.len(), n);
        }
        let mut w = SlidingWindow::new(recs, 200, 40);
        let mut a = Disc::new(DiscConfig::new(0.9, 3));
        let mut b = GraphDisc::new(DiscConfig::new(0.9, 3));
        let fill = w.fill();
        a.apply(&fill);
        b.apply(&fill);
        loop {
            let la = a.assignments();
            let lb = b.assignments();
            assert_eq!(la.len(), lb.len());
            for ((ida, x), (idb, y)) in la.iter().zip(lb.iter()) {
                assert_eq!(ida, idb);
                assert_eq!(*x < 0, *y < 0, "seed {seed}: {ida} noise flag");
            }
            let ca: std::collections::HashSet<i64> =
                la.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
            let cb: std::collections::HashSet<i64> =
                lb.iter().map(|(_, l)| *l).filter(|&l| l >= 0).collect();
            assert_eq!(ca.len(), cb.len(), "seed {seed}: cluster count");
            match w.advance() {
                Some(batch) => {
                    a.apply(&batch);
                    b.apply(&batch);
                }
                None => break,
            }
        }
    }
}
