//! Provenance exactness: the causal event stream must agree with a
//! from-scratch DBSCAN diff of consecutive windows.
//!
//! The oracle is deliberately naive — O(n²) neighbourhood counts over the
//! mirrored window, no incremental state — so the events are checked
//! against the *definitions* (Def. 1 ex-core, Def. 2 neo-core), not
//! against the machinery that emitted them.

use disc_core::{Disc, DiscConfig};
use disc_geom::{Point, PointId};
use disc_telemetry::{
    MemoryProvenanceSink, ProvenanceEvent, ProvenanceKind, ProvenanceSink, Registry,
};
use disc_window::{datasets, SlideBatch, SlidingWindow};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

struct Fwd(Arc<MemoryProvenanceSink>);
impl ProvenanceSink for Fwd {
    fn emit(&self, ev: &ProvenanceEvent) {
        self.0.emit(ev);
    }
}

fn instrumented(cfg: DiscConfig) -> (Disc<2>, Arc<MemoryProvenanceSink>) {
    let sink = Arc::new(MemoryProvenanceSink::new());
    let reg = Arc::new(Registry::new().with_provenance(Box::new(Fwd(sink.clone()))));
    (Disc::new(cfg).with_recorder(reg), sink)
}

/// Self-inclusive ε-neighbourhood counts → the core set of `window`.
fn core_set(window: &BTreeMap<PointId, Point<2>>, eps: f64, tau: usize) -> BTreeSet<PointId> {
    window
        .iter()
        .filter(|(_, p)| window.values().filter(|q| p.within(q, eps)).count() >= tau)
        .map(|(id, _)| *id)
        .collect()
}

/// Number of connected components of the core graph (cluster count).
fn component_count(window: &BTreeMap<PointId, Point<2>>, eps: f64, tau: usize) -> usize {
    let cores: Vec<(PointId, Point<2>)> = core_set(window, eps, tau)
        .into_iter()
        .map(|id| (id, window[&id]))
        .collect();
    let mut comp: Vec<Option<usize>> = vec![None; cores.len()];
    let mut next = 0;
    for s in 0..cores.len() {
        if comp[s].is_some() {
            continue;
        }
        comp[s] = Some(next);
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for v in 0..cores.len() {
                if comp[v].is_none() && cores[u].1.within(&cores[v].1, eps) {
                    comp[v] = Some(next);
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    next
}

fn mirror(window: &mut BTreeMap<PointId, Point<2>>, batch: &SlideBatch<2>) {
    for (id, _) in &batch.outgoing {
        window.remove(id);
    }
    for (id, p) in &batch.incoming {
        window.insert(*id, *p);
    }
}

/// Drives one slide and checks the slide's events against the oracle diff.
fn check_slide(
    disc: &mut Disc<2>,
    sink: &MemoryProvenanceSink,
    window: &mut BTreeMap<PointId, Point<2>>,
    batch: &SlideBatch<2>,
    slide: u64,
) {
    let cfg = *disc.config();
    let (eps, tau) = (cfg.eps, cfg.tau);
    let cores_before = core_set(window, eps, tau);
    mirror(window, batch);
    let cores_after = core_set(window, eps, tau);
    disc.apply(batch);

    let events: Vec<ProvenanceEvent> = sink
        .events()
        .into_iter()
        .filter(|e| e.slide == slide)
        .collect();
    let mut got_ex = BTreeSet::new();
    let mut got_neo = BTreeSet::new();
    for e in &events {
        ProvenanceEvent::validate_jsonl(&e.to_jsonl()).unwrap();
        match e.kind {
            ProvenanceKind::ExCoreDetected { id } => {
                assert!(got_ex.insert(PointId(id)), "duplicate ex-core event {id}");
            }
            ProvenanceKind::NeoCoreDetected { id } => {
                assert!(got_neo.insert(PointId(id)), "duplicate neo-core event {id}");
            }
            ProvenanceKind::Adoption { border, core } => {
                // An adoption must bind a window non-core to an in-range
                // core of the *new* window.
                let (b, c) = (PointId(border), PointId(core));
                assert!(!cores_after.contains(&b), "adopted point {b} is a core");
                assert!(cores_after.contains(&c), "adopter {c} is not a core");
                assert!(
                    window[&b].within(&window[&c], eps),
                    "adopter {c} out of range of {b}"
                );
            }
            _ => {}
        }
    }
    // Def. 1 / Def. 2, computed from scratch on both windows.
    let want_ex: BTreeSet<PointId> = cores_before.difference(&cores_after).copied().collect();
    let want_neo: BTreeSet<PointId> = cores_after.difference(&cores_before).copied().collect();
    assert_eq!(got_ex, want_ex, "slide {slide}: ex-core set diverged");
    assert_eq!(got_neo, want_neo, "slide {slide}: neo-core set diverged");

    // Event counts line up with the slide's own stats, and the engine's
    // cluster count with the oracle's component count.
    let count =
        |pred: &dyn Fn(&ProvenanceKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
    let s = *disc.last_stats();
    assert_eq!(
        count(&|k| matches!(k, ProvenanceKind::ClusterSplit { .. })),
        s.splits,
        "slide {slide}"
    );
    assert_eq!(
        count(&|k| matches!(k, ProvenanceKind::ClusterMerge { .. })),
        s.merges,
        "slide {slide}"
    );
    assert_eq!(
        count(&|k| matches!(k, ProvenanceKind::ClusterEmerged { .. })),
        s.emerged,
        "slide {slide}"
    );
    assert_eq!(
        disc.num_clusters(),
        component_count(window, eps, tau),
        "slide {slide}: cluster count diverged from the oracle"
    );
}

#[test]
fn stream_events_match_the_oracle_diff() {
    for (records, w, s, eps, tau) in [
        (datasets::maze(900, 10, 3), 250, 60, 0.6, 5),
        (
            datasets::gaussian_blobs::<2>(900, 3, 0.6, 9),
            220,
            220,
            1.0,
            5,
        ),
        (datasets::covid_like(800, 11), 250, 70, 1.2, 5),
    ] {
        let (mut disc, sink) = instrumented(DiscConfig::new(eps, tau));
        let mut sw = SlidingWindow::new(records, w, s);
        let mut window = BTreeMap::new();
        let mut slide = 1u64;
        check_slide(&mut disc, &sink, &mut window, &sw.fill(), slide);
        while let Some(batch) = sw.advance() {
            slide += 1;
            check_slide(&mut disc, &sink, &mut window, &batch, slide);
        }
        assert!(slide > 3, "stream too short to exercise evolution");
    }
}

/// A scripted stream whose every evolution step is known in advance: the
/// narrative must name the specific ex-/neo-cores behind each transition.
#[test]
fn crafted_stream_names_the_causes() {
    let b = |incoming: &[(u64, f64)], outgoing: &[(u64, f64)]| SlideBatch::<2> {
        incoming: incoming
            .iter()
            .map(|&(i, x)| (PointId(i), Point::new([x, 0.0])))
            .collect(),
        outgoing: outgoing
            .iter()
            .map(|&(i, x)| (PointId(i), Point::new([x, 0.0])))
            .collect(),
    };
    let (mut disc, sink) = instrumented(DiscConfig::new(0.6, 3));
    let by_slide = |sink: &MemoryProvenanceSink, s: u64| -> Vec<ProvenanceKind> {
        sink.events()
            .into_iter()
            .filter(|e| e.slide == s)
            .map(|e| e.kind)
            .collect()
    };

    // Slide 1: a 9-point line emerges as one cluster.
    let line: Vec<(u64, f64)> = (0..9).map(|i| (i, i as f64 * 0.5)).collect();
    disc.apply(&b(&line, &[]));
    let evs = by_slide(&sink, 1);
    assert_eq!(
        evs.iter()
            .filter(|k| matches!(k, ProvenanceKind::ClusterEmerged { .. }))
            .count(),
        1
    );

    // Slide 2: the bridge departs; the split names ex-cores 3, 4, 5.
    disc.apply(&b(&[], &[(4, 2.0)]));
    let evs = by_slide(&sink, 2);
    let ex: BTreeSet<u64> = evs
        .iter()
        .filter_map(|k| match k {
            ProvenanceKind::ExCoreDetected { id } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(ex, BTreeSet::from([3, 4, 5]));
    assert!(evs
        .iter()
        .any(|k| matches!(k, ProvenanceKind::ClusterSplit { parts: 2, .. })));
    assert!(evs
        .iter()
        .any(|k| matches!(k, ProvenanceKind::RetroClassFormed { .. })));

    // Slide 3: the bridge returns; the merge names neo-cores 3, 4, 5.
    disc.apply(&b(&[(14, 2.0)], &[]));
    let evs = by_slide(&sink, 3);
    let neo: BTreeSet<u64> = evs
        .iter()
        .filter_map(|k| match k {
            ProvenanceKind::NeoCoreDetected { id } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(neo, BTreeSet::from([3, 5, 14]));
    assert!(evs
        .iter()
        .any(|k| matches!(k, ProvenanceKind::ClusterMerge { merged: 2, .. })));

    // Slide 4: a far triangle emerges as its own cluster. (Pairwise
    // distances 0.25/0.25/0.5 keep every pair strictly inside ε = 0.6 —
    // no float-boundary coin flips.)
    disc.apply(&b(&[(20, 50.0), (21, 50.25), (22, 50.5)], &[]));
    let evs = by_slide(&sink, 4);
    let emerged: Vec<u64> = evs
        .iter()
        .filter_map(|k| match k {
            ProvenanceKind::ClusterEmerged { size, .. } => Some(*size),
            _ => None,
        })
        .collect();
    assert_eq!(emerged, vec![3], "one emergence of exactly the triangle");

    // Slide 5: the triangle departs entirely — the cluster dies, and its
    // retro class counts all three ex-cores.
    disc.apply(&b(&[], &[(20, 50.0), (21, 50.25), (22, 50.5)]));
    let evs = by_slide(&sink, 5);
    let died: Vec<u64> = evs
        .iter()
        .filter_map(|k| match k {
            ProvenanceKind::ClusterDied { size, .. } => Some(*size),
            _ => None,
        })
        .collect();
    assert_eq!(died, vec![3], "one dissipation covering the whole triangle");
    assert_eq!(disc.num_clusters(), 1, "only the line remains");
}
