//! `try_apply` atomicity: a rejected slide must leave the engine exactly
//! as it was — assignments, cluster count, census, index statistics, the
//! full exported state image — for every rejection kind and both index
//! backends, and the engine must keep working normally afterwards.

use disc_core::{Disc, DiscConfig, SlideError};
use disc_geom::{Point, PointId};
use disc_index::{CurveIndex, GridIndex, RTree, SpatialBackend};
use disc_window::{datasets, SlideBatch, SlidingWindow};
use proptest::prelude::*;

/// Everything observable about an engine, captured for comparison.
type Observation<const D: usize> = (
    Vec<(PointId, i64)>,
    usize,
    (usize, usize, usize),
    disc_index::Stats,
    Vec<(Point<D>, i64)>,
    disc_core::EngineState<D>,
);

fn observe<const D: usize, B: SpatialBackend<D>>(disc: &Disc<D, B>) -> Observation<D> {
    (
        disc.assignments(),
        disc.num_clusters(),
        disc.census(),
        *disc.index_stats(),
        disc.snapshot(),
        disc.export_state(),
    )
}

/// Builds the three kinds of invalid batch against a live engine. Each
/// also carries valid incoming *and* outgoing entries, so a non-atomic
/// implementation that mutates before validating would be caught.
fn poison_batches<const D: usize, B: SpatialBackend<D>>(
    disc: &Disc<D, B>,
    kind: usize,
) -> (SlideBatch<D>, SlideError) {
    let first = disc.export_state().points[0];
    let (victim_id, victim_pt) = (first.id, first.point);
    let fresh_a = PointId(1_000_000);
    let fresh_b = PointId(1_000_001);
    let mut near = victim_pt;
    near[0] += 0.1;
    match kind {
        0 => {
            let mut bad = near;
            bad[0] = f64::NAN;
            (
                SlideBatch {
                    incoming: vec![(fresh_a, near), (fresh_b, bad)],
                    outgoing: vec![(victim_id, victim_pt)],
                },
                SlideError::NonFinite(fresh_b),
            )
        }
        1 => (
            SlideBatch {
                incoming: vec![(fresh_a, near), (fresh_a, near)],
                outgoing: vec![(victim_id, victim_pt)],
            },
            SlideError::DuplicateIncoming(fresh_a),
        ),
        _ => {
            let ghost = PointId(2_000_000);
            (
                SlideBatch {
                    incoming: vec![(fresh_a, near)],
                    outgoing: vec![(victim_id, victim_pt), (ghost, victim_pt)],
                },
                SlideError::UnknownOutgoing(ghost),
            )
        }
    }
}

fn assert_rejection_is_atomic<const D: usize, B: SpatialBackend<D>>(seed: u64, kind: usize) {
    let recs = datasets::gaussian_blobs::<D>(260, 3, 0.8, seed);
    let mut w = SlidingWindow::new(recs, 140, 30);
    let mut disc: Disc<D, B> = Disc::with_index(DiscConfig::new(1.0, 4));
    disc.apply(&w.fill());
    disc.apply(&w.advance().unwrap());

    let before = observe(&disc);
    let (batch, expected) = poison_batches(&disc, kind);
    match disc.try_apply(&batch) {
        Err(e) => assert_eq!(e, expected, "seed {seed} kind {kind}"),
        Ok(_) => panic!("seed {seed} kind {kind}: poisoned batch accepted"),
    }
    let after = observe(&disc);
    assert_eq!(
        before, after,
        "seed {seed} kind {kind}: rejection mutated state"
    );

    // The engine still works: the next valid slide applies cleanly.
    let next = w.advance().unwrap();
    disc.try_apply(&next)
        .expect("engine unusable after a rejected slide");
    disc.check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn rejected_slides_leave_no_trace_on_rtree(seed in 0u64..2000, kind in 0usize..3) {
        assert_rejection_is_atomic::<2, RTree<2>>(seed, kind);
    }

    #[test]
    fn rejected_slides_leave_no_trace_on_grid(seed in 0u64..2000, kind in 0usize..3) {
        assert_rejection_is_atomic::<2, GridIndex<2>>(seed, kind);
    }

    #[test]
    fn rejected_slides_leave_no_trace_on_curve(seed in 0u64..2000, kind in 0usize..3) {
        assert_rejection_is_atomic::<2, CurveIndex<2>>(seed, kind);
    }
}

/// All three rejection kinds, deterministically, in 3-d as well.
#[test]
fn all_rejection_kinds_are_atomic_in_3d() {
    for kind in 0..3 {
        assert_rejection_is_atomic::<3, RTree<3>>(99, kind);
        assert_rejection_is_atomic::<3, GridIndex<3>>(99, kind);
        assert_rejection_is_atomic::<3, CurveIndex<3>>(99, kind);
    }
}
