//! Operation counters used by the paper's Fig. 7 evaluation.

/// Counters accumulated by every query against an [`RTree`].
///
/// `range_searches` is the headline number the paper reports; the other
/// counters give visibility into *why* the epoch-based probe is cheaper
/// (fewer nodes descended, fewer distance computations).
///
/// [`RTree`]: crate::RTree
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// ε-range searches executed (plain queries + epoch probes).
    pub range_searches: u64,
    /// Of which epoch-based probes.
    pub epoch_probes: u64,
    /// Tree nodes descended into across all searches.
    pub nodes_visited: u64,
    /// Point-to-point distance evaluations at leaf level.
    pub distance_checks: u64,
    /// Subtrees skipped by epoch pruning.
    pub subtrees_pruned: u64,
    /// Points inserted over the tree's lifetime.
    pub inserts: u64,
    /// Points removed over the tree's lifetime.
    pub removes: u64,
    /// Batched mutations taken through `bulk_insert` (one per batch that
    /// actually used the shared-descent path, not the per-point fallback).
    pub bulk_insert_batches: u64,
    /// Batched mutations taken through `bulk_remove` (shared-descent path).
    pub bulk_remove_batches: u64,
    /// Multi-center ball traversals (`for_each_in_balls` calls).
    pub multi_ball_queries: u64,
    /// Centers served across all multi-center traversals. Comparing this to
    /// `multi_ball_queries` gives the batching factor.
    pub multi_ball_centers: u64,
    /// Nodes descended into by the batched paths (bulk insert/remove and
    /// multi-center traversal). Kept separate from `nodes_visited` so the
    /// per-point and batched costs can be compared side by side.
    pub bulk_nodes_visited: u64,
    /// Leaf entries examined by the batched paths.
    pub bulk_leaf_scans: u64,
}

impl Stats {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Stats::default();
    }

    /// Publishes every counter as a `disc_index_*_total` metric delta.
    ///
    /// Callers pass a *windowed* diff (see [`Stats::since`]) so the
    /// recorder's monotone counters advance by exactly the work done in
    /// the window. Shared by both [`SpatialBackend`] implementors, which
    /// is what keeps the exported metric set backend-agnostic.
    ///
    /// [`SpatialBackend`]: crate::SpatialBackend
    pub fn publish_to(&self, rec: &dyn disc_telemetry::Recorder) {
        if !rec.enabled() {
            return;
        }
        rec.counter_add("disc_index_range_searches_total", self.range_searches);
        rec.counter_add("disc_index_epoch_probes_total", self.epoch_probes);
        rec.counter_add("disc_index_nodes_visited_total", self.nodes_visited);
        rec.counter_add("disc_index_distance_checks_total", self.distance_checks);
        rec.counter_add("disc_index_subtrees_pruned_total", self.subtrees_pruned);
        rec.counter_add("disc_index_inserts_total", self.inserts);
        rec.counter_add("disc_index_removes_total", self.removes);
        rec.counter_add(
            "disc_index_bulk_insert_batches_total",
            self.bulk_insert_batches,
        );
        rec.counter_add(
            "disc_index_bulk_remove_batches_total",
            self.bulk_remove_batches,
        );
        rec.counter_add(
            "disc_index_multi_ball_queries_total",
            self.multi_ball_queries,
        );
        rec.counter_add(
            "disc_index_multi_ball_centers_total",
            self.multi_ball_centers,
        );
        rec.counter_add(
            "disc_index_bulk_nodes_visited_total",
            self.bulk_nodes_visited,
        );
        rec.counter_add("disc_index_bulk_leaf_scans_total", self.bulk_leaf_scans);
    }

    /// The *non-zero* counters as span attributes, for attaching a
    /// windowed diff (see [`Stats::since`]) to a tracing span — the
    /// range-search attribution both backends share. Names match the
    /// exported metrics minus the `disc_index_` / `_total` decoration.
    pub fn span_args(&self) -> Vec<(&'static str, u64)> {
        let all: [(&'static str, u64); 13] = [
            ("range_searches", self.range_searches),
            ("epoch_probes", self.epoch_probes),
            ("nodes_visited", self.nodes_visited),
            ("distance_checks", self.distance_checks),
            ("subtrees_pruned", self.subtrees_pruned),
            ("inserts", self.inserts),
            ("removes", self.removes),
            ("bulk_insert_batches", self.bulk_insert_batches),
            ("bulk_remove_batches", self.bulk_remove_batches),
            ("multi_ball_queries", self.multi_ball_queries),
            ("multi_ball_centers", self.multi_ball_centers),
            ("bulk_nodes_visited", self.bulk_nodes_visited),
            ("bulk_leaf_scans", self.bulk_leaf_scans),
        ];
        all.into_iter().filter(|&(_, v)| v > 0).collect()
    }

    /// Adds every counter of `other` into `self` — how per-worker counter
    /// sets gathered by the parallel scan paths fold back into a backend's
    /// authoritative totals. Fieldwise addition is commutative, but callers
    /// merge in task order anyway so the totals are reproduced identically
    /// at every pool width.
    pub fn merge(&mut self, other: &Stats) {
        self.range_searches += other.range_searches;
        self.epoch_probes += other.epoch_probes;
        self.nodes_visited += other.nodes_visited;
        self.distance_checks += other.distance_checks;
        self.subtrees_pruned += other.subtrees_pruned;
        self.inserts += other.inserts;
        self.removes += other.removes;
        self.bulk_insert_batches += other.bulk_insert_batches;
        self.bulk_remove_batches += other.bulk_remove_batches;
        self.multi_ball_queries += other.multi_ball_queries;
        self.multi_ball_centers += other.multi_ball_centers;
        self.bulk_nodes_visited += other.bulk_nodes_visited;
        self.bulk_leaf_scans += other.bulk_leaf_scans;
    }

    /// Difference `self - earlier`, for windowed measurements.
    pub fn since(&self, earlier: &Stats) -> Stats {
        Stats {
            range_searches: self.range_searches - earlier.range_searches,
            epoch_probes: self.epoch_probes - earlier.epoch_probes,
            nodes_visited: self.nodes_visited - earlier.nodes_visited,
            distance_checks: self.distance_checks - earlier.distance_checks,
            subtrees_pruned: self.subtrees_pruned - earlier.subtrees_pruned,
            inserts: self.inserts - earlier.inserts,
            removes: self.removes - earlier.removes,
            bulk_insert_batches: self.bulk_insert_batches - earlier.bulk_insert_batches,
            bulk_remove_batches: self.bulk_remove_batches - earlier.bulk_remove_batches,
            multi_ball_queries: self.multi_ball_queries - earlier.multi_ball_queries,
            multi_ball_centers: self.multi_ball_centers - earlier.multi_ball_centers,
            bulk_nodes_visited: self.bulk_nodes_visited - earlier.bulk_nodes_visited,
            bulk_leaf_scans: self.bulk_leaf_scans - earlier.bulk_leaf_scans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let a = Stats {
            range_searches: 10,
            epoch_probes: 4,
            nodes_visited: 100,
            distance_checks: 50,
            subtrees_pruned: 3,
            inserts: 7,
            removes: 2,
            bulk_insert_batches: 5,
            bulk_remove_batches: 4,
            multi_ball_queries: 9,
            multi_ball_centers: 90,
            bulk_nodes_visited: 80,
            bulk_leaf_scans: 70,
        };
        let b = Stats {
            range_searches: 4,
            epoch_probes: 1,
            nodes_visited: 40,
            distance_checks: 20,
            subtrees_pruned: 1,
            inserts: 5,
            removes: 1,
            bulk_insert_batches: 2,
            bulk_remove_batches: 1,
            multi_ball_queries: 3,
            multi_ball_centers: 30,
            bulk_nodes_visited: 20,
            bulk_leaf_scans: 10,
        };
        let d = a.since(&b);
        assert_eq!(d.range_searches, 6);
        assert_eq!(d.epoch_probes, 3);
        assert_eq!(d.nodes_visited, 60);
        assert_eq!(d.distance_checks, 30);
        assert_eq!(d.subtrees_pruned, 2);
        assert_eq!(d.inserts, 2);
        assert_eq!(d.removes, 1);
        assert_eq!(d.bulk_insert_batches, 3);
        assert_eq!(d.bulk_remove_batches, 3);
        assert_eq!(d.multi_ball_queries, 6);
        assert_eq!(d.multi_ball_centers, 60);
        assert_eq!(d.bulk_nodes_visited, 60);
        assert_eq!(d.bulk_leaf_scans, 60);
    }

    #[test]
    fn publish_to_exports_every_counter() {
        let s = Stats {
            range_searches: 10,
            epoch_probes: 4,
            nodes_visited: 100,
            distance_checks: 50,
            subtrees_pruned: 3,
            inserts: 7,
            removes: 2,
            bulk_insert_batches: 5,
            bulk_remove_batches: 4,
            multi_ball_queries: 9,
            multi_ball_centers: 90,
            bulk_nodes_visited: 80,
            bulk_leaf_scans: 70,
        };
        let reg = disc_telemetry::Registry::new();
        s.publish_to(&reg);
        // 13 Stats fields -> 13 exported counters; the names below are the
        // exact public metric set (DESIGN.md §9).
        assert_eq!(reg.counter_value("disc_index_range_searches_total"), 10);
        assert_eq!(reg.counter_value("disc_index_epoch_probes_total"), 4);
        assert_eq!(reg.counter_value("disc_index_nodes_visited_total"), 100);
        assert_eq!(reg.counter_value("disc_index_distance_checks_total"), 50);
        assert_eq!(reg.counter_value("disc_index_subtrees_pruned_total"), 3);
        assert_eq!(reg.counter_value("disc_index_inserts_total"), 7);
        assert_eq!(reg.counter_value("disc_index_removes_total"), 2);
        assert_eq!(reg.counter_value("disc_index_bulk_insert_batches_total"), 5);
        assert_eq!(reg.counter_value("disc_index_bulk_remove_batches_total"), 4);
        assert_eq!(reg.counter_value("disc_index_multi_ball_queries_total"), 9);
        assert_eq!(reg.counter_value("disc_index_multi_ball_centers_total"), 90);
        assert_eq!(reg.counter_value("disc_index_bulk_nodes_visited_total"), 80);
        assert_eq!(reg.counter_value("disc_index_bulk_leaf_scans_total"), 70);
        assert_eq!(reg.counter_names().len(), 13);
        // Publishing again advances monotonically.
        s.publish_to(&reg);
        assert_eq!(reg.counter_value("disc_index_range_searches_total"), 20);
        // A disabled recorder records nothing.
        let noop = disc_telemetry::NoopRecorder;
        s.publish_to(&noop); // must be a no-op (nothing to observe, but must not panic)
    }

    #[test]
    fn span_args_keep_only_touched_counters() {
        assert!(Stats::default().span_args().is_empty());
        let s = Stats {
            range_searches: 3,
            nodes_visited: 12,
            ..Stats::default()
        };
        let args = s.span_args();
        assert_eq!(args, vec![("range_searches", 3), ("nodes_visited", 12)]);
    }

    #[test]
    fn merge_adds_fieldwise_and_roundtrips_with_since() {
        let a = Stats {
            range_searches: 10,
            epoch_probes: 4,
            nodes_visited: 100,
            distance_checks: 50,
            subtrees_pruned: 3,
            inserts: 7,
            removes: 2,
            bulk_insert_batches: 5,
            bulk_remove_batches: 4,
            multi_ball_queries: 9,
            multi_ball_centers: 90,
            bulk_nodes_visited: 80,
            bulk_leaf_scans: 70,
        };
        let b = Stats {
            range_searches: 1,
            epoch_probes: 2,
            nodes_visited: 3,
            distance_checks: 4,
            subtrees_pruned: 5,
            inserts: 6,
            removes: 7,
            bulk_insert_batches: 8,
            bulk_remove_batches: 9,
            multi_ball_queries: 10,
            multi_ball_centers: 11,
            bulk_nodes_visited: 12,
            bulk_leaf_scans: 13,
        };
        let mut sum = a;
        sum.merge(&b);
        // merge is the inverse of since: (a + b) - b == a, fieldwise.
        assert_eq!(sum.since(&b), a);
        assert_eq!(sum.since(&a), b);
        // Merging the default is the identity.
        let mut same = a;
        same.merge(&Stats::default());
        assert_eq!(same, a);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = Stats {
            range_searches: 1,
            ..Stats::default()
        };
        s.reset();
        assert_eq!(s, Stats::default());
    }
}
