//! Epoch-based probing of the R-tree (paper §IV-B, Alg. 4).
//!
//! During one MS-BFS connectivity check, every range search wants only the
//! *unvisited* core points in range. Storing visited flags in a side table
//! does not make the search cheaper — the paper's observation is that the
//! flags must live in the index so that entire already-visited subtrees can
//! be skipped. Epochs (a monotone tick per MS-BFS instance) avoid resetting
//! flags between instances.
//!
//! ## Deviation from the paper, and why
//!
//! Alg. 4 in the paper stores a bare epoch and propagates the **minimum** of
//! the children's epochs to the parent entry, pruning any entry whose epoch
//! equals the current tick. Taken literally this breaks MS-BFS: if a subtree
//! was fully visited by thread *t*, a probe by a different thread *s* would
//! prune it and the two searches could never observe that they met there —
//! MS-BFS would report a split that did not happen.
//!
//! We therefore store an *(tick, owner)* pair. `owner` is an MS-BFS thread
//! slot, resolved through the caller-provided union-find (`resolve`) so that
//! merged threads count as the same owner:
//!
//! * an entry is pruned only when its owner resolves to the probing thread —
//!   always safe, nothing new can be learned inside;
//! * a subtree owned by a *different* thread is descended, and its in-range
//!   leaf entries are reported as `foreign` hits so the caller can merge the
//!   two threads; after the merge the owners resolve equal and subsequent
//!   probes prune the subtree as the paper intends.
//!
//! A parent entry is stamped on backtrack when **all** of its child's
//! entries carry the current tick and a single resolved owner — the
//! owner-aware analogue of the paper's min-propagation.

use crate::node::{Epoch, NodeIdx, NodeKind};
use crate::tree::RTree;
use disc_geom::{Point, PointId};

/// Result of one epoch probe.
///
/// Buffers are caller-owned so the hot loop never reallocates.
#[derive(Debug, Default)]
pub struct ProbeOutcome<const D: usize> {
    /// In-range vertices not previously visited by this MS-BFS instance;
    /// they are now marked as visited by the probing thread.
    pub fresh: Vec<(PointId, Point<D>)>,
    /// In-range vertices already visited by a *different* thread of this
    /// instance: `(point, resolved owner)` pairs — merge signals.
    pub foreign: Vec<(PointId, u32)>,
}

impl<const D: usize> ProbeOutcome<D> {
    /// Empties both buffers, keeping capacity.
    pub fn clear(&mut self) {
        self.fresh.clear();
        self.foreign.clear();
    }
}

/// A running MS-BFS instance's handle on the index epochs.
#[derive(Debug, Clone, Copy)]
pub struct EpochProbe {
    tick: u64,
}

impl EpochProbe {
    /// Wraps a raw tick — backends mint probes through this from their own
    /// tick counters.
    pub(crate) fn with_tick(tick: u64) -> Self {
        EpochProbe { tick }
    }

    /// The instance's tick (diagnostics).
    pub fn tick(&self) -> u64 {
        self.tick
    }
}

impl<const D: usize> RTree<D> {
    /// Starts a new MS-BFS instance: allocates a fresh tick. All epoch
    /// marks from earlier instances become stale implicitly.
    pub fn begin_epoch(&mut self) -> EpochProbe {
        self.tick_counter += 1;
        EpochProbe {
            tick: self.tick_counter,
        }
    }

    /// Marks a single point as visited by `owner` for this instance —
    /// MS-BFS seeds its starters with this (Alg. 3 line 4 enqueues every
    /// starter as already-visited), so a probe that reaches another
    /// thread's starter reports it as foreign and the threads merge on
    /// first contact.
    pub fn mark_visited(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        id: PointId,
        owner: u32,
    ) -> bool {
        self.mark_rec(self.root, probe.tick, center, id, owner)
    }

    fn mark_rec(
        &mut self,
        idx: NodeIdx,
        tick: u64,
        center: &Point<D>,
        id: PointId,
        owner: u32,
    ) -> bool {
        match &mut self.nodes[idx as usize].kind {
            NodeKind::Leaf(entries) => {
                for e in entries {
                    if e.id == id {
                        e.epoch = Epoch { tick, owner };
                        return true;
                    }
                }
                false
            }
            NodeKind::Internal(_) => {
                let candidates: Vec<NodeIdx> = match &self.nodes[idx as usize].kind {
                    NodeKind::Internal(v) => v
                        .iter()
                        .filter(|b| b.mbr.contains_point(center))
                        .map(|b| b.child)
                        .collect(),
                    NodeKind::Leaf(_) => unreachable!(),
                };
                for child in candidates {
                    if self.mark_rec(child, tick, center, id, owner) {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// One epoch-based ε-range search on behalf of MS-BFS thread `thread`
    /// (pass the thread's *current union-find root*).
    ///
    /// * `resolve` maps a stored owner slot to its current union-find root.
    /// * `is_vertex` restricts the traversal to graph vertices (core
    ///   points); non-vertex points in range are ignored and never marked,
    ///   so they can never produce spurious thread meetings.
    ///
    /// Fresh vertices are marked `(tick, thread)`; foreign vertices are
    /// reported but left untouched (they belong to the other thread — the
    /// union-find merge makes ownership consistent).
    #[allow(clippy::too_many_arguments)]
    pub fn epoch_probe(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        eps: f64,
        thread: u32,
        resolve: &mut dyn FnMut(u32) -> u32,
        is_vertex: &mut dyn FnMut(PointId) -> bool,
        out: &mut ProbeOutcome<D>,
    ) {
        self.stats.range_searches += 1;
        self.stats.epoch_probes += 1;
        let eps2 = eps * eps;
        let root = self.root;
        self.probe_rec(
            root, probe.tick, center, eps2, thread, resolve, is_vertex, out,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn probe_rec(
        &mut self,
        idx: NodeIdx,
        tick: u64,
        center: &Point<D>,
        eps2: f64,
        thread: u32,
        resolve: &mut dyn FnMut(u32) -> u32,
        is_vertex: &mut dyn FnMut(PointId) -> bool,
        out: &mut ProbeOutcome<D>,
    ) {
        self.stats.nodes_visited += 1;
        match &mut self.nodes[idx as usize].kind {
            NodeKind::Leaf(entries) => {
                self.stats.distance_checks += entries.len() as u64;
                for e in entries {
                    if center.dist2(&e.point) > eps2 || !is_vertex(e.id) {
                        continue;
                    }
                    if e.epoch.tick == tick {
                        let owner = resolve(e.epoch.owner);
                        if owner != thread {
                            out.foreign.push((e.id, owner));
                        }
                        // Same thread: already in its visited set, skip.
                    } else {
                        e.epoch = Epoch {
                            tick,
                            owner: thread,
                        };
                        out.fresh.push((e.id, e.point));
                    }
                }
            }
            NodeKind::Internal(v) => {
                // Re-borrow per slot instead of collecting candidates: the
                // probe is the hot path and must not allocate per node.
                let n = v.len();
                for slot in 0..n {
                    let (child, epoch, in_range, covered) = match &self.nodes[idx as usize].kind {
                        NodeKind::Internal(v) => {
                            let b = &v[slot];
                            (
                                b.child,
                                b.epoch,
                                b.mbr.dist2_to_point(center) <= eps2,
                                b.mbr.max_dist2_to_point(center) <= eps2,
                            )
                        }
                        NodeKind::Leaf(_) => unreachable!(),
                    };
                    if !in_range {
                        continue;
                    }
                    if epoch.tick == tick && resolve(epoch.owner) == thread {
                        // Whole subtree already visited by this (merged)
                        // thread: nothing new below.
                        self.stats.subtrees_pruned += 1;
                        continue;
                    }
                    self.probe_rec(child, tick, center, eps2, thread, resolve, is_vertex, out);
                    // Backtrack: stamp the branch if the child is now
                    // uniformly owned at this tick. Only worth scanning the
                    // child when this probe's ball covered its whole box or
                    // the branch was already stamped at this tick — partial
                    // coverage almost never completes a subtree and the
                    // scan costs O(fan-out) per node.
                    if covered || epoch.tick == tick {
                        if let Some(owner) = self.uniform_owner(child, tick, resolve) {
                            if let NodeKind::Internal(v) = &mut self.nodes[idx as usize].kind {
                                v[slot].epoch = Epoch { tick, owner };
                            }
                        }
                    }
                }
            }
        }
    }

    /// If every entry of `idx` carries `tick` and a single resolved owner,
    /// returns that owner.
    fn uniform_owner(
        &self,
        idx: NodeIdx,
        tick: u64,
        resolve: &mut dyn FnMut(u32) -> u32,
    ) -> Option<u32> {
        match &self.nodes[idx as usize].kind {
            NodeKind::Leaf(entries) => {
                let mut owner = None;
                for e in entries {
                    if e.epoch.tick != tick {
                        return None;
                    }
                    let o = resolve(e.epoch.owner);
                    match owner {
                        None => owner = Some(o),
                        Some(prev) if prev != o => return None,
                        Some(_) => {}
                    }
                }
                owner
            }
            NodeKind::Internal(branches) => {
                let mut owner = None;
                for b in branches {
                    if b.epoch.tick != tick {
                        return None;
                    }
                    let o = resolve(b.epoch.owner);
                    match owner {
                        None => owner = Some(o),
                        Some(prev) if prev != o => return None,
                        Some(_) => {}
                    }
                }
                owner
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_geom::Point;

    fn grid_tree(n: usize) -> RTree<2> {
        // n x n unit grid.
        let mut tree = RTree::new();
        let mut id = 0u64;
        for x in 0..n {
            for y in 0..n {
                tree.insert(PointId(id), Point::new([x as f64, y as f64]));
                id += 1;
            }
        }
        tree
    }

    #[test]
    fn probe_returns_each_vertex_once_per_instance() {
        let mut tree = grid_tree(8);
        let probe = tree.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        let c = Point::new([3.5, 3.5]);
        tree.epoch_probe(probe, &c, 2.0, 0, &mut resolve, &mut all, &mut out);
        let first = out.fresh.len();
        assert!(first > 0);
        assert!(out.foreign.is_empty());
        out.clear();
        tree.epoch_probe(probe, &c, 2.0, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), 0, "second probe must see nothing fresh");
        assert!(out.foreign.is_empty(), "same thread never reports foreign");
    }

    #[test]
    fn new_instance_sees_everything_again() {
        let mut tree = grid_tree(6);
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        let c = Point::new([2.0, 2.0]);
        let p1 = tree.begin_epoch();
        tree.epoch_probe(p1, &c, 1.5, 0, &mut resolve, &mut all, &mut out);
        let n1 = out.fresh.len();
        out.clear();
        let p2 = tree.begin_epoch();
        tree.epoch_probe(p2, &c, 1.5, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), n1);
    }

    #[test]
    fn foreign_thread_is_reported_not_hidden() {
        let mut tree = grid_tree(8);
        let probe = tree.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        // Thread 0 visits a ball, then thread 1 probes an overlapping ball.
        tree.epoch_probe(
            probe,
            &Point::new([2.0, 2.0]),
            1.5,
            0,
            &mut resolve,
            &mut all,
            &mut out,
        );
        let visited_by_0: Vec<PointId> = out.fresh.iter().map(|(id, _)| *id).collect();
        out.clear();
        tree.epoch_probe(
            probe,
            &Point::new([3.0, 2.0]),
            1.5,
            1,
            &mut resolve,
            &mut all,
            &mut out,
        );
        assert!(
            !out.foreign.is_empty(),
            "overlap with thread 0 must surface as foreign hits"
        );
        for (id, owner) in &out.foreign {
            assert_eq!(*owner, 0);
            assert!(visited_by_0.contains(id));
        }
        // Fresh + foreign must cover the overlap exactly once each.
        for (id, _) in &out.fresh {
            assert!(!visited_by_0.contains(id));
        }
    }

    #[test]
    fn merged_threads_prune_each_others_subtrees() {
        let mut tree = grid_tree(8);
        let probe = tree.begin_epoch();
        let mut out = ProbeOutcome::default();
        // Union-find stub: after the merge both 0 and 1 resolve to 0.
        #[allow(unused_assignments)]
        let mut merged = false;
        let mut all = |_: PointId| true;
        {
            let mut resolve = |o: u32| o;
            tree.epoch_probe(
                probe,
                &Point::new([2.0, 2.0]),
                2.0,
                0,
                &mut resolve,
                &mut all,
                &mut out,
            );
        }
        merged = true;
        out.clear();
        {
            let mut resolve = |o: u32| if merged { 0 } else { o };
            // Thread 1 (now resolving to 0) re-probes the same region: all
            // marks owned by 0 == its own root, so nothing is fresh or
            // foreign.
            tree.epoch_probe(
                probe,
                &Point::new([2.0, 2.0]),
                2.0,
                0,
                &mut resolve,
                &mut all,
                &mut out,
            );
        }
        assert!(out.fresh.is_empty());
        assert!(out.foreign.is_empty());
    }

    #[test]
    fn non_vertices_are_invisible_to_probes() {
        let mut tree = grid_tree(4);
        let probe = tree.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        // Only even ids are vertices.
        let mut even = |id: PointId| id.raw().is_multiple_of(2);
        tree.epoch_probe(
            probe,
            &Point::new([1.5, 1.5]),
            5.0,
            0,
            &mut resolve,
            &mut even,
            &mut out,
        );
        assert!(out.fresh.iter().all(|(id, _)| id.raw() % 2 == 0));
        assert_eq!(out.fresh.len(), 8, "16 grid points, half are vertices");
        // Odd ids stay unmarked: a later probe that counts everything as a
        // vertex must see them fresh.
        out.clear();
        let mut all = |_: PointId| true;
        tree.epoch_probe(
            probe,
            &Point::new([1.5, 1.5]),
            5.0,
            0,
            &mut resolve,
            &mut all,
            &mut out,
        );
        assert_eq!(out.fresh.len(), 8, "the odd half is still fresh");
    }

    #[test]
    fn pruning_happens_for_repeat_probes() {
        let mut tree = grid_tree(16);
        let probe = tree.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        // A ball covering the whole grid guarantees every leaf is fully
        // visited and therefore stamped for pruning.
        let c = Point::new([8.0, 8.0]);
        tree.epoch_probe(probe, &c, 25.0, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), 256);
        let before = tree.stats().subtrees_pruned;
        out.clear();
        tree.epoch_probe(probe, &c, 25.0, 0, &mut resolve, &mut all, &mut out);
        let after = tree.stats().subtrees_pruned;
        assert!(
            after > before,
            "a repeat probe over a fully-visited region must prune subtrees"
        );
    }
}
