//! k-nearest-neighbour search (best-first branch-and-bound).
//!
//! Used by the parameter-estimation helper (`disc-core::kdistance`): the
//! paper selects ε via the K-distance graph method of Ester et al. /
//! Schubert et al., which needs the distance to each point's k-th
//! neighbour.

use crate::node::{NodeIdx, NodeKind};
use crate::tree::RTree;
use disc_geom::{Point, PointId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry over candidate results.
struct Candidate {
    dist2: f64,
    id: PointId,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist2.total_cmp(&other.dist2)
    }
}

/// Min-heap entry over tree nodes, keyed by the lower bound on distance.
struct Frontier {
    bound2: f64,
    node: NodeIdx,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.bound2 == other.bound2
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the nearest node.
        other.bound2.total_cmp(&self.bound2)
    }
}

impl<const D: usize> RTree<D> {
    /// The `k` indexed points nearest to `center` (including an indexed
    /// point at the query location itself, if any), as `(id, distance)`
    /// sorted by ascending distance. Returns fewer than `k` entries only
    /// when the tree is smaller than `k`.
    pub fn nearest(&mut self, center: &Point<D>, k: usize) -> Vec<(PointId, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        self.stats.range_searches += 1;
        let mut best: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
        let mut frontier: BinaryHeap<Frontier> = BinaryHeap::new();
        frontier.push(Frontier {
            bound2: 0.0,
            node: self.root,
        });

        while let Some(Frontier { bound2, node }) = frontier.pop() {
            if best.len() == k && bound2 > best.peek().expect("non-empty").dist2 {
                break; // every remaining node is farther than the k-th best
            }
            self.stats.nodes_visited += 1;
            match &self.nodes[node as usize].kind {
                NodeKind::Leaf(entries) => {
                    self.stats.distance_checks += entries.len() as u64;
                    for e in entries {
                        let d2 = center.dist2(&e.point);
                        if best.len() < k {
                            best.push(Candidate {
                                dist2: d2,
                                id: e.id,
                            });
                        } else if d2 < best.peek().expect("non-empty").dist2 {
                            best.pop();
                            best.push(Candidate {
                                dist2: d2,
                                id: e.id,
                            });
                        }
                    }
                }
                NodeKind::Internal(branches) => {
                    for b in branches {
                        let lb = b.mbr.dist2_to_point(center);
                        if best.len() < k || lb <= best.peek().expect("non-empty").dist2 {
                            frontier.push(Frontier {
                                bound2: lb,
                                node: b.child,
                            });
                        }
                    }
                }
            }
        }

        let mut out: Vec<(PointId, f64)> = best
            .into_sorted_vec()
            .into_iter()
            .map(|c| (c.id, c.dist2.sqrt()))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }

    /// Distance from `center` to its k-th nearest indexed point
    /// (1-indexed: `k = 1` is the nearest). `None` if fewer than `k`
    /// points are indexed.
    pub fn kth_distance(&mut self, center: &Point<D>, k: usize) -> Option<f64> {
        let nn = self.nearest(center, k);
        if nn.len() < k {
            None
        } else {
            Some(nn[k - 1].1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> RTree<2> {
        let mut t = RTree::new();
        let mut id = 0u64;
        for x in 0..n {
            for y in 0..n {
                t.insert(PointId(id), Point::new([x as f64, y as f64]));
                id += 1;
            }
        }
        t
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let mut t = grid(12);
        let pts: Vec<(PointId, Point<2>)> = {
            let mut v = Vec::new();
            t.for_each(|id, p| v.push((id, *p)));
            v
        };
        for (qx, qy) in [(0.2, 0.7), (5.5, 5.5), (11.9, 0.1), (-3.0, 6.0)] {
            let q = Point::new([qx, qy]);
            let got = t.nearest(&q, 7);
            let mut want: Vec<(PointId, f64)> =
                pts.iter().map(|(id, p)| (*id, q.dist(p))).collect();
            want.sort_by(|a, b| a.1.total_cmp(&b.1));
            want.truncate(7);
            assert_eq!(got.len(), 7);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.1 - w.1).abs() < 1e-12, "{got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn k_larger_than_tree_returns_everything() {
        let mut t = grid(2);
        let got = t.nearest(&Point::new([0.0, 0.0]), 10);
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].1, 0.0);
    }

    #[test]
    fn kth_distance_is_sorted_cutoff() {
        let mut t = grid(5);
        let q = Point::new([2.0, 2.0]);
        assert_eq!(t.kth_distance(&q, 1), Some(0.0));
        assert_eq!(t.kth_distance(&q, 2), Some(1.0));
        assert_eq!(t.kth_distance(&q, 5), Some(1.0));
        assert!((t.kth_distance(&q, 6).unwrap() - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(t.kth_distance(&q, 26), None);
    }

    #[test]
    fn zero_k_and_empty_tree() {
        let mut t: RTree<2> = RTree::new();
        assert!(t.nearest(&Point::new([0.0, 0.0]), 3).is_empty());
        let mut t = grid(3);
        assert!(t.nearest(&Point::new([0.0, 0.0]), 0).is_empty());
    }
}
