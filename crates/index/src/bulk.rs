//! Batched mutation and query layer: bulk insert, bulk remove, and the
//! multi-center ε-ball traversal.
//!
//! The per-point slide path pays one root-to-leaf traversal per element:
//! every insert descends the tree once, every delete walks its candidate
//! branches and may trigger an orphan/reinsert storm, and every ε-query
//! starts over at the root. For a stride of `s` points over a window of `n`
//! that is `O(s·log n)` traversals with heavily overlapping paths. The
//! batched layer amortises the overlap — one traversal per *batch*:
//!
//! * [`RTree::bulk_insert`] sorts the stride by a cheap spatial key so
//!   consecutive points land in the same subtree, shares the
//!   choose-subtree descent across each run, and resolves overflow with a
//!   single multi-way re-tile per node instead of a cascade of binary
//!   splits.
//! * [`RTree::bulk_remove`] partitions the outgoing set across children in
//!   one top-down pass and defers condensation: underfull nodes found on
//!   the unwind are collected once and their survivors reinserted in a
//!   single grouped pass at the end (the teardown-tree treatment).
//! * [`RTree::for_each_in_balls`] answers many ε-balls in one walk,
//!   narrowing the active-center list per branch, so shared upper-level
//!   nodes are visited once instead of once per center.
//!
//! All three are exact: they produce the same answer set (and, for the
//! mutations, a structurally valid tree over the same entries) as their
//! per-point counterparts — only the traversal order differs. Work done
//! here is accounted in the `bulk_*` counters of [`crate::Stats`] so the
//! per-point and batched costs can be compared side by side.

use crate::node::{Branch, Epoch, LeafEntry, Node, NodeIdx, NodeKind};
use crate::tree::RTree;
use crate::{MAX_ENTRIES, MIN_ENTRIES};
use disc_geom::{Aabb, FxHashMap, Point, PointId};

/// Batches smaller than this take the per-point path: the shared descent
/// only pays for itself once a few entries ride the same traversal.
pub(crate) const BULK_MIN: usize = 8;

/// Target fill for multi-way split groups; matches the slack `bulk_load`
/// leaves for subsequent inserts.
const BULK_FILL: usize = MAX_ENTRIES * 3 / 4;

impl<const D: usize> RTree<D> {
    // ------------------------------------------------------------------
    // Bulk insert
    // ------------------------------------------------------------------

    /// Inserts a batch of points in one top-down traversal.
    ///
    /// Equivalent to calling [`insert`](Self::insert) per element (and falls
    /// back to exactly that for tiny batches); larger batches are sorted by
    /// a cheap spatial key so runs of nearby points share the
    /// choose-subtree descent, and overflowing nodes are re-tiled once into
    /// multiple siblings instead of splitting repeatedly.
    pub fn bulk_insert(&mut self, items: Vec<(PointId, Point<D>)>) {
        if items.len() < BULK_MIN {
            for (id, p) in items {
                self.insert(id, p);
            }
            return;
        }
        self.stats.bulk_insert_batches += 1;
        self.stats.inserts += items.len() as u64;
        self.len += items.len();
        let entries: Vec<LeafEntry<D>> = items
            .into_iter()
            .map(|(id, point)| {
                debug_assert!(point.is_finite(), "refusing to index a non-finite point");
                LeafEntry {
                    point,
                    id,
                    epoch: Epoch::CLEAR,
                }
            })
            .collect();
        self.bulk_insert_entries(entries);
    }

    /// Core of the batched insert. Entries keep whatever epoch marks they
    /// carry (a reinserted orphan's visited status is a property of the
    /// point, not of its slot) and `len`/`inserts` bookkeeping is the
    /// caller's job — this is shared between `bulk_insert` and the orphan
    /// pass of `bulk_remove`.
    pub(crate) fn bulk_insert_entries(&mut self, mut entries: Vec<LeafEntry<D>>) {
        if entries.len() < BULK_MIN {
            for e in entries {
                let split = self.insert_rec_entry(self.root, self.height, e);
                if let Some((mbr, sib)) = split {
                    self.grow_root(mbr, sib);
                }
            }
            return;
        }
        // Sort by the first axis (the same one-dimensional simplification as
        // the STR packer) so consecutive entries tend to choose the same
        // branch and the cached choice below keeps hitting.
        entries.sort_by(|a, b| a.point[0].partial_cmp(&b.point[0]).unwrap());
        let sibs = self.bulk_insert_rec(self.root, self.height, entries);
        self.adopt_root_siblings(sibs);
    }

    /// Recursive batched insert. Distributes `entries` over the children of
    /// `idx`, recursing once per touched child, and resolves overflow with a
    /// single multi-way re-tile. Returns the extra sibling nodes created at
    /// this level; the visited node keeps the first tile.
    fn bulk_insert_rec(
        &mut self,
        idx: NodeIdx,
        level: usize,
        entries: Vec<LeafEntry<D>>,
    ) -> Vec<(Aabb<D>, NodeIdx)> {
        self.stats.bulk_nodes_visited += 1;
        if level == 1 {
            let overflow = {
                let NodeKind::Leaf(v) = &mut self.nodes[idx as usize].kind else {
                    unreachable!("level 1 node must be a leaf");
                };
                v.extend(entries);
                if v.len() <= MAX_ENTRIES {
                    return Vec::new();
                }
                std::mem::take(v)
            };
            let mut groups = tile(overflow, |e, axis| e.point[axis], D).into_iter();
            let first = groups.next().expect("tile yields at least one group");
            *self.node_mut(idx) = Node {
                kind: NodeKind::Leaf(first),
            };
            return groups
                .map(|g| {
                    let mut mbr = Aabb::empty();
                    for e in &g {
                        mbr.extend_point(&e.point);
                    }
                    let sib = self.alloc(Node {
                        kind: NodeKind::Leaf(g),
                    });
                    (mbr, sib)
                })
                .collect();
        }

        // Assign each entry to a child by least enlargement, exactly as the
        // per-point path would, but reuse the previous entry's choice while
        // the sorted run stays inside the same branch box (containment means
        // zero enlargement, which is already minimal).
        let n_branches = match &self.node(idx).kind {
            NodeKind::Internal(v) => v.len(),
            NodeKind::Leaf(_) => unreachable!("internal level node must be internal"),
        };
        let mut buckets: Vec<Vec<LeafEntry<D>>> = (0..n_branches).map(|_| Vec::new()).collect();
        {
            let NodeKind::Internal(v) = &mut self.nodes[idx as usize].kind else {
                unreachable!();
            };
            let mut last: Option<usize> = None;
            for e in entries {
                let slot = match last {
                    Some(s) if v[s].mbr.contains_point(&e.point) => s,
                    _ => Self::choose_branch(v, &e.point),
                };
                // Extend eagerly so later choices see the grown box, same as
                // sequential inserts would.
                v[slot].mbr.extend_point(&e.point);
                // The child gains unvisited entries: its subtree can no
                // longer be considered fully visited by a live MS-BFS.
                v[slot].epoch = Epoch::CLEAR;
                last = Some(slot);
                buckets[slot].push(e);
            }
        }

        for (slot, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let child = match &self.node(idx).kind {
                NodeKind::Internal(v) => v[slot].child,
                NodeKind::Leaf(_) => unreachable!(),
            };
            let extra = self.bulk_insert_rec(child, level - 1, bucket);
            if !extra.is_empty() {
                // The child re-tiled; its box changed arbitrarily.
                let child_mbr = self.node(child).mbr();
                let NodeKind::Internal(v) = &mut self.nodes[idx as usize].kind else {
                    unreachable!();
                };
                v[slot].mbr = child_mbr;
                for (mbr, sib) in extra {
                    v.push(Branch {
                        mbr,
                        child: sib,
                        epoch: Epoch::CLEAR,
                    });
                }
            }
        }

        if self.node(idx).len() <= MAX_ENTRIES {
            return Vec::new();
        }
        let overflow = {
            let NodeKind::Internal(v) = &mut self.nodes[idx as usize].kind else {
                unreachable!();
            };
            std::mem::take(v)
        };
        let mut groups = tile(overflow, |b, axis| b.mbr.center_along(axis), D).into_iter();
        let first = groups.next().expect("tile yields at least one group");
        *self.node_mut(idx) = Node {
            kind: NodeKind::Internal(first),
        };
        groups
            .map(|g| {
                let mut mbr = Aabb::empty();
                for b in &g {
                    mbr.extend(&b.mbr);
                }
                let sib = self.alloc(Node {
                    kind: NodeKind::Internal(g),
                });
                (mbr, sib)
            })
            .collect()
    }

    /// Grows the tree upward until the root plus its overflow siblings fit
    /// under a single node (a batched insert can spawn several siblings at
    /// once, unlike the per-point path's single split).
    fn adopt_root_siblings(&mut self, sibs: Vec<(Aabb<D>, NodeIdx)>) {
        if sibs.is_empty() {
            return;
        }
        let mut level: Vec<(Aabb<D>, NodeIdx)> = Vec::with_capacity(sibs.len() + 1);
        level.push((self.node(self.root).mbr(), self.root));
        level.extend(sibs);
        while level.len() > 1 {
            let branches: Vec<Branch<D>> = level
                .into_iter()
                .map(|(mbr, child)| Branch {
                    mbr,
                    child,
                    epoch: Epoch::CLEAR,
                })
                .collect();
            let groups = if branches.len() <= MAX_ENTRIES {
                vec![branches]
            } else {
                tile(branches, |b, axis| b.mbr.center_along(axis), D)
            };
            level = groups
                .into_iter()
                .map(|g| {
                    let mut mbr = Aabb::empty();
                    for b in &g {
                        mbr.extend(&b.mbr);
                    }
                    let idx = self.alloc(Node {
                        kind: NodeKind::Internal(g),
                    });
                    (mbr, idx)
                })
                .collect();
            self.height += 1;
        }
        self.root = level[0].1;
    }

    // ------------------------------------------------------------------
    // Bulk remove
    // ------------------------------------------------------------------

    /// Removes a batch of `(id, point)` entries in one top-down traversal.
    ///
    /// Condensation is deferred: underfull nodes discovered on the unwind
    /// are collected into a single orphan list, dropped from their parents,
    /// and the surviving entries reinserted in one grouped pass at the end —
    /// instead of [`remove`](Self::remove)'s per-delete orphan/reinsert
    /// storm. Orphans keep their epoch marks, exactly like `remove`.
    ///
    /// Returns how many of the requested entries were found and removed
    /// (ids absent from the tree are skipped, matching `remove`'s `false`).
    pub fn bulk_remove(&mut self, items: &[(PointId, Point<D>)]) -> usize {
        if items.len() < BULK_MIN {
            return items.iter().filter(|(id, p)| self.remove(*id, *p)).count();
        }
        self.stats.bulk_remove_batches += 1;
        let mut pending: FxHashMap<PointId, Point<D>> =
            items.iter().map(|(id, p)| (*id, *p)).collect();
        let mut orphans: Vec<LeafEntry<D>> = Vec::new();
        let removed =
            self.bulk_remove_rec(self.root, self.height, items, &mut pending, &mut orphans);
        self.stats.removes += removed as u64;
        self.len -= removed;

        // A batched delete can condense away *every* branch of an internal
        // root (all entries end up in `orphans`); restart from an empty leaf.
        if self.height > 1 && self.node(self.root).len() == 0 {
            let old_root = self.root;
            self.dealloc(old_root);
            self.root = self.alloc(Node::new_leaf());
            self.height = 1;
        }
        // Shrink the root while it is an internal node with a single child.
        while self.height > 1 {
            let only_child = match &self.node(self.root).kind {
                NodeKind::Internal(v) if v.len() == 1 => v[0].child,
                _ => break,
            };
            let old_root = self.root;
            self.root = only_child;
            self.dealloc(old_root);
            self.height -= 1;
        }

        // One grouped reinsert for every survivor of a condensed node.
        self.bulk_insert_entries(orphans);
        removed
    }

    /// Recursive batched remove. `cands` is the subset of the batch that can
    /// live under `idx`; `pending` tracks ids not yet found anywhere.
    /// Returns the number of entries removed under this node.
    fn bulk_remove_rec(
        &mut self,
        idx: NodeIdx,
        level: usize,
        cands: &[(PointId, Point<D>)],
        pending: &mut FxHashMap<PointId, Point<D>>,
        orphans: &mut Vec<LeafEntry<D>>,
    ) -> usize {
        self.stats.bulk_nodes_visited += 1;
        if level == 1 {
            let NodeKind::Leaf(entries) = &mut self.nodes[idx as usize].kind else {
                unreachable!("level 1 node must be a leaf");
            };
            self.stats.bulk_leaf_scans += entries.len() as u64;
            let mut removed = 0usize;
            entries.retain(|e| match pending.remove(&e.id) {
                Some(p) => {
                    debug_assert_eq!(e.point, p, "id located at stale position");
                    removed += 1;
                    false
                }
                None => true,
            });
            return removed;
        }

        // Partition the candidates across children whose box could contain
        // them; recurse only where candidates remain.
        let branch_info: Vec<(usize, NodeIdx, Aabb<D>)> = match &self.node(idx).kind {
            NodeKind::Internal(v) => v
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.child, b.mbr))
                .collect(),
            NodeKind::Leaf(_) => unreachable!("internal level node must be internal"),
        };
        let mut removed = 0usize;
        let mut drops: Vec<usize> = Vec::new();
        let mut new_mbrs: Vec<(usize, Aabb<D>)> = Vec::new();
        let mut sub: Vec<(PointId, Point<D>)> = Vec::new();
        for (slot, child, mbr) in branch_info {
            sub.clear();
            sub.extend(
                cands
                    .iter()
                    .filter(|(id, p)| pending.contains_key(id) && mbr.contains_point(p)),
            );
            if sub.is_empty() {
                continue;
            }
            let r = self.bulk_remove_rec(child, level - 1, &sub, pending, orphans);
            if r == 0 {
                continue;
            }
            removed += r;
            if self.node(child).len() < MIN_ENTRIES {
                // Condense: orphan the whole subtree and drop the branch.
                self.collect_subtree(child, orphans);
                drops.push(slot);
            } else {
                new_mbrs.push((slot, self.node(child).mbr()));
            }
        }

        if removed > 0 {
            let NodeKind::Internal(v) = &mut self.nodes[idx as usize].kind else {
                unreachable!();
            };
            for (slot, mbr) in new_mbrs {
                v[slot].mbr = mbr;
            }
            if !drops.is_empty() {
                let mut keep = vec![true; v.len()];
                for slot in drops {
                    keep[slot] = false;
                }
                let mut flags = keep.into_iter();
                v.retain(|_| flags.next().expect("one flag per branch"));
            }
        }
        removed
    }

    // ------------------------------------------------------------------
    // Multi-center ball traversal
    // ------------------------------------------------------------------

    /// Calls `f(center_idx, id, &point)` for every pair of a center and an
    /// indexed point within Euclidean distance `eps` (inclusive).
    ///
    /// One traversal serves all centers: each node is visited at most once,
    /// with the active-center list narrowed per branch, so upper-level nodes
    /// shared by many balls are descended once instead of once per center.
    /// Counts as `centers.len()` range searches to keep the Fig. 7 headline
    /// metric comparable with the per-point path; the traversal savings show
    /// up in `bulk_nodes_visited`/`bulk_leaf_scans`.
    pub fn for_each_in_balls(
        &mut self,
        centers: &[Point<D>],
        eps: f64,
        f: impl FnMut(usize, PointId, &Point<D>),
    ) {
        let mut stats = *self.stats();
        self.scan_balls(centers, eps, f, &mut stats);
        *self.stats_mut() = stats;
    }

    /// Read-only flavour of [`for_each_in_balls`](Self::for_each_in_balls)
    /// with caller-supplied counters: the multi-center walk only reads the
    /// node arena, so the parallel COLLECT path can partition a slide's
    /// centers into chunks and run one `scan_balls` per worker on a shared
    /// `&self`, merging the per-worker [`Stats`] in chunk order afterwards.
    pub fn scan_balls(
        &self,
        centers: &[Point<D>],
        eps: f64,
        mut f: impl FnMut(usize, PointId, &Point<D>),
        stats: &mut crate::Stats,
    ) {
        if centers.is_empty() {
            return;
        }
        stats.range_searches += centers.len() as u64;
        stats.multi_ball_queries += 1;
        stats.multi_ball_centers += centers.len() as u64;
        let eps2 = eps * eps;
        let mut nodes_visited = 0u64;
        let mut leaf_scans = 0u64;
        // Explicit-stack DFS; active-center sublists are pooled so the walk
        // does not allocate per branch.
        let mut stack: Vec<(NodeIdx, Vec<u32>)> =
            vec![(self.root, (0..centers.len() as u32).collect())];
        let mut pool: Vec<Vec<u32>> = Vec::new();
        while let Some((idx, active)) = stack.pop() {
            nodes_visited += 1;
            match &self.nodes[idx as usize].kind {
                NodeKind::Leaf(entries) => {
                    leaf_scans += entries.len() as u64;
                    // Center-major so each center stays in registers across
                    // the entry scan, matching the single-center loop shape.
                    for &ci in &active {
                        let c = &centers[ci as usize];
                        for e in entries {
                            if c.dist2(&e.point) <= eps2 {
                                f(ci as usize, e.id, &e.point);
                            }
                        }
                    }
                }
                NodeKind::Internal(branches) => {
                    // Cheap whole-branch reject against the union box of the
                    // active balls before the per-center distance tests.
                    let mut union_box = Aabb::empty();
                    for &ci in &active {
                        union_box.extend(&Aabb::ball_bounds(&centers[ci as usize], eps));
                    }
                    for b in branches {
                        if !b.mbr.intersects(&union_box) {
                            continue;
                        }
                        let mut sub = pool.pop().unwrap_or_default();
                        sub.clear();
                        sub.extend(
                            active
                                .iter()
                                .copied()
                                .filter(|&ci| b.mbr.dist2_to_point(&centers[ci as usize]) <= eps2),
                        );
                        if sub.is_empty() {
                            pool.push(sub);
                        } else {
                            stack.push((b.child, sub));
                        }
                    }
                }
            }
            pool.push(active);
        }
        stats.bulk_nodes_visited += nodes_visited;
        stats.bulk_leaf_scans += leaf_scans;
    }
}

/// One-dimensional multi-way tiling of an overflowing entry list: sorts by
/// the axis of widest spread (of `coord(item, axis)`) and cuts into
/// near-equal groups of at most [`BULK_FILL`]. With `n > MAX_ENTRIES` every
/// group lands within `[MIN_ENTRIES, MAX_ENTRIES]`.
fn tile<T>(mut items: Vec<T>, coord: impl Fn(&T, usize) -> f64, dims: usize) -> Vec<Vec<T>> {
    debug_assert!(items.len() > MAX_ENTRIES);
    let mut axis = 0usize;
    let mut best_spread = f64::NEG_INFINITY;
    for d in 0..dims {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for it in &items {
            let c = coord(it, d);
            lo = lo.min(c);
            hi = hi.max(c);
        }
        if hi - lo > best_spread {
            best_spread = hi - lo;
            axis = d;
        }
    }
    items.sort_by(|a, b| coord(a, axis).partial_cmp(&coord(b, axis)).unwrap());
    let n = items.len();
    let g = n.div_ceil(BULK_FILL);
    let base = n / g;
    let rem = n % g;
    debug_assert!(base >= MIN_ENTRIES, "tile group below minimum fill");
    let mut out = Vec::with_capacity(g);
    let mut it = items.into_iter();
    for gi in 0..g {
        let take = base + usize::from(gi < rem);
        out.push(it.by_ref().take(take).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: u64, salt: u64) -> Vec<(PointId, Point<2>)> {
        let mut state = 0x2545_f491_4f6c_dd1du64 ^ salt;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n)
            .map(|i| (PointId(i), Point::new([next() * 100.0, next() * 100.0])))
            .collect()
    }

    fn sorted_ids(tree: &mut RTree<2>, q: &Point<2>, eps: f64) -> Vec<PointId> {
        let mut ids = tree.ball_ids(q, eps);
        ids.sort();
        ids
    }

    #[test]
    fn bulk_insert_matches_per_point_inserts() {
        let items = pts(700, 1);
        let mut bulk: RTree<2> = RTree::new();
        let mut per: RTree<2> = RTree::new();
        for chunk in items.chunks(90) {
            bulk.bulk_insert(chunk.to_vec());
            bulk.check_invariants();
            for (id, p) in chunk {
                per.insert(*id, *p);
            }
        }
        assert_eq!(bulk.len(), items.len());
        for (_, q) in items.iter().step_by(41) {
            assert_eq!(sorted_ids(&mut bulk, q, 6.0), sorted_ids(&mut per, q, 6.0));
        }
    }

    #[test]
    fn bulk_insert_into_empty_tree() {
        let items = pts(300, 2);
        let mut t: RTree<2> = RTree::new();
        t.bulk_insert(items.clone());
        t.check_invariants();
        assert_eq!(t.len(), 300);
        for (_, q) in items.iter().step_by(29) {
            let want: usize = items.iter().filter(|(_, p)| q.within(p, 5.0)).count();
            assert_eq!(t.ball_count(q, 5.0), want);
        }
    }

    #[test]
    fn tiny_batches_fall_back_to_per_point() {
        let items = pts(BULK_MIN as u64 - 1, 3);
        let mut t: RTree<2> = RTree::new();
        t.bulk_insert(items.clone());
        assert_eq!(t.len(), items.len());
        assert_eq!(t.stats().bulk_insert_batches, 0);
        assert_eq!(t.stats().inserts, items.len() as u64);
        let removed = t.bulk_remove(&items);
        assert_eq!(removed, items.len());
        assert_eq!(t.stats().bulk_remove_batches, 0);
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn bulk_remove_matches_per_point_removes() {
        let items = pts(600, 4);
        let mut bulk = RTree::bulk_load(items.clone());
        let mut per = RTree::bulk_load(items.clone());
        for chunk in items.chunks(75) {
            let removed = bulk.bulk_remove(chunk);
            assert_eq!(removed, chunk.len());
            bulk.check_invariants();
            for (id, p) in chunk {
                assert!(per.remove(*id, *p));
            }
            let probe = Point::new([50.0, 50.0]);
            assert_eq!(
                sorted_ids(&mut bulk, &probe, 30.0),
                sorted_ids(&mut per, &probe, 30.0)
            );
        }
        assert!(bulk.is_empty());
        assert_eq!(bulk.height(), 1, "root must collapse back to a single leaf");
    }

    #[test]
    fn bulk_remove_skips_missing_ids() {
        let items = pts(100, 5);
        let mut t = RTree::bulk_load(items.clone());
        let mut batch: Vec<(PointId, Point<2>)> = items[..40].to_vec();
        batch.push((PointId(9_999), Point::new([1.0, 1.0])));
        assert_eq!(t.bulk_remove(&batch), 40);
        assert_eq!(t.len(), 60);
        t.check_invariants();
    }

    #[test]
    fn interleaved_bulk_slides_stay_consistent() {
        // Mimic the sliding-window pattern: remove the oldest stride, insert
        // a fresh one, repeatedly, and compare against a linear scan.
        let window = 400usize;
        let stride = 50usize;
        let all = pts(1200, 6);
        let mut t = RTree::bulk_load(all[..window].to_vec());
        let mut lo = 0usize;
        let mut hi = window;
        while hi + stride <= all.len() {
            assert_eq!(t.bulk_remove(&all[lo..lo + stride]), stride);
            t.bulk_insert(all[hi..hi + stride].to_vec());
            lo += stride;
            hi += stride;
            t.check_invariants();
            assert_eq!(t.len(), window);
            let q = all[lo + window / 2].1;
            let mut got = t.ball_ids(&q, 8.0);
            got.sort();
            let mut want: Vec<PointId> = all[lo..hi]
                .iter()
                .filter(|(_, p)| q.within(p, 8.0))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn multi_center_traversal_matches_repeated_single_queries() {
        let items = pts(500, 7);
        let mut t = RTree::bulk_load(items.clone());
        let centers: Vec<Point<2>> = items.iter().step_by(11).map(|(_, p)| *p).collect();
        let mut got: Vec<(usize, PointId)> = Vec::new();
        t.for_each_in_balls(&centers, 7.0, |ci, id, _| got.push((ci, id)));
        got.sort();
        let mut want: Vec<(usize, PointId)> = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            t.for_each_in_ball(c, 7.0, |id, _| want.push((ci, id)));
        }
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn multi_center_traversal_visits_fewer_nodes_than_per_point() {
        // Clustered centers share upper-level nodes; the batched walk must
        // descend them once, not once per center.
        let items = pts(2000, 8);
        let mut t = RTree::bulk_load(items.clone());
        let centers: Vec<Point<2>> = items[..100].iter().map(|(_, p)| *p).collect();
        t.reset_stats();
        t.for_each_in_balls(&centers, 2.0, |_, _, _| {});
        let batched = t.stats().bulk_nodes_visited;
        assert_eq!(t.stats().range_searches, centers.len() as u64);
        assert_eq!(t.stats().multi_ball_queries, 1);
        t.reset_stats();
        for c in &centers {
            t.for_each_in_ball(c, 2.0, |_, _| {});
        }
        let per_point = t.stats().nodes_visited;
        assert!(
            batched < per_point,
            "batched walk visited {batched} nodes, per-point {per_point}"
        );
    }

    #[test]
    fn empty_center_list_is_a_no_op() {
        let mut t = RTree::bulk_load(pts(50, 9));
        t.reset_stats();
        t.for_each_in_balls(&[], 5.0, |_, _, _| panic!("no centers, no calls"));
        assert_eq!(t.stats().range_searches, 0);
        assert_eq!(t.stats().multi_ball_queries, 0);
    }

    #[test]
    fn bulk_counters_track_batches() {
        let items = pts(300, 10);
        let mut t: RTree<2> = RTree::new();
        t.bulk_insert(items.clone());
        assert_eq!(t.stats().bulk_insert_batches, 1);
        assert_eq!(t.stats().inserts, 300);
        assert!(t.stats().bulk_nodes_visited > 0);
        let removed = t.bulk_remove(&items[..150]);
        assert_eq!(removed, 150);
        assert_eq!(t.stats().bulk_remove_batches, 1);
        assert_eq!(t.stats().removes, 150);
        assert!(t.stats().bulk_leaf_scans > 0);
    }

    #[test]
    fn tile_respects_fill_bounds() {
        for n in (MAX_ENTRIES + 1)..=(MAX_ENTRIES * 6) {
            let items: Vec<Point<2>> = (0..n)
                .map(|i| Point::new([i as f64, (i * 7 % 13) as f64]))
                .collect();
            let groups = tile(items, |p, axis| p[axis], 2);
            let total: usize = groups.iter().map(Vec::len).sum();
            assert_eq!(total, n);
            for g in &groups {
                assert!(
                    g.len() >= MIN_ENTRIES,
                    "n={n}: group of {} too small",
                    g.len()
                );
                assert!(
                    g.len() <= MAX_ENTRIES,
                    "n={n}: group of {} too large",
                    g.len()
                );
            }
        }
    }

    #[test]
    fn duplicate_coordinates_survive_bulk_paths() {
        let p = Point::new([1.0, 1.0]);
        let items: Vec<(PointId, Point<2>)> = (0..60).map(|i| (PointId(i), p)).collect();
        let mut t: RTree<2> = RTree::new();
        t.bulk_insert(items.clone());
        t.check_invariants();
        assert_eq!(t.ball_count(&p, 0.0), 60);
        assert_eq!(t.bulk_remove(&items[10..30]), 20);
        t.check_invariants();
        assert_eq!(t.ball_count(&p, 0.0), 40);
    }
}
