//! The R-tree proper: insert, delete, bulk load, and plain range queries.

use crate::node::{Branch, Epoch, LeafEntry, Node, NodeIdx, NodeKind, NO_NODE};
use crate::stats::Stats;
use crate::{MAX_ENTRIES, MIN_ENTRIES};
use disc_geom::{Aabb, Point, PointId};

/// An in-memory R-tree over `D`-dimensional points.
///
/// ```
/// use disc_geom::{Point, PointId};
/// use disc_index::RTree;
///
/// let mut tree: RTree<2> = RTree::new();
/// tree.insert(PointId(0), Point::new([0.0, 0.0]));
/// tree.insert(PointId(1), Point::new([0.5, 0.0]));
/// tree.insert(PointId(2), Point::new([9.0, 9.0]));
/// assert_eq!(tree.ball_count(&Point::new([0.0, 0.0]), 1.0), 2);
/// assert!(tree.remove(PointId(1), Point::new([0.5, 0.0])));
/// assert_eq!(tree.len(), 2);
/// ```
///
/// Nodes live in an arena (`Vec<Node>` plus a free list) so the tree is a
/// single allocation-friendly structure with `u32` child links. The tree
/// stores `(PointId, Point<D>)` pairs; duplicate coordinates are allowed
/// (ids disambiguate), which matters for GPS-style streams where repeated
/// fixes are common.
pub struct RTree<const D: usize> {
    pub(crate) nodes: Vec<Node<D>>,
    pub(crate) root: NodeIdx,
    free: Vec<NodeIdx>,
    pub(crate) len: usize,
    pub(crate) height: usize,
    /// Monotone counter handing out epoch ticks to MS-BFS instances.
    pub(crate) tick_counter: u64,
    pub(crate) stats: Stats,
}

impl<const D: usize> Default for RTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> RTree<D> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        let root_node = Node::new_leaf();
        RTree {
            nodes: vec![root_node],
            root: 0,
            free: Vec::new(),
            len: 0,
            height: 1,
            tick_counter: 0,
            stats: Stats::default(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf root).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Read access to the operation counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Mutable access to the operation counters, for folding per-worker
    /// counter sets gathered by the `scan_*` paths back into the totals.
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    pub(crate) fn alloc(&mut self, node: Node<D>) -> NodeIdx {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as NodeIdx
        }
    }

    pub(crate) fn dealloc(&mut self, idx: NodeIdx) {
        // Leave a cheap tombstone; the slot is recycled via the free list.
        self.nodes[idx as usize] = Node {
            kind: NodeKind::Leaf(Vec::new()),
        };
        self.free.push(idx);
    }

    pub(crate) fn node(&self, idx: NodeIdx) -> &Node<D> {
        &self.nodes[idx as usize]
    }

    pub(crate) fn node_mut(&mut self, idx: NodeIdx) -> &mut Node<D> {
        &mut self.nodes[idx as usize]
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts a point. Duplicate `(id, point)` pairs are the caller's
    /// responsibility; the tree stores whatever it is given.
    pub fn insert(&mut self, id: PointId, point: Point<D>) {
        debug_assert!(point.is_finite(), "refusing to index a non-finite point");
        self.stats.inserts += 1;
        let split = self.insert_rec(self.root, self.height, id, point);
        if let Some((sib_mbr, sib)) = split {
            self.grow_root(sib_mbr, sib);
        }
        self.len += 1;
    }

    pub(crate) fn grow_root(&mut self, sib_mbr: Aabb<D>, sib: NodeIdx) {
        let old_root = self.root;
        let old_mbr = self.node(old_root).mbr();
        let mut new_root = Node::new_internal();
        if let NodeKind::Internal(v) = &mut new_root.kind {
            v.push(Branch {
                mbr: old_mbr,
                child: old_root,
                epoch: Epoch::CLEAR,
            });
            v.push(Branch {
                mbr: sib_mbr,
                child: sib,
                epoch: Epoch::CLEAR,
            });
        }
        self.root = self.alloc(new_root);
        self.height += 1;
    }

    /// Recursive insert; returns the new sibling `(mbr, node)` when the
    /// visited node split.
    fn insert_rec(
        &mut self,
        idx: NodeIdx,
        level: usize,
        id: PointId,
        point: Point<D>,
    ) -> Option<(Aabb<D>, NodeIdx)> {
        if level == 1 {
            // Leaf level.
            if let NodeKind::Leaf(entries) = &mut self.nodes[idx as usize].kind {
                entries.push(LeafEntry {
                    point,
                    id,
                    epoch: Epoch::CLEAR,
                });
                if entries.len() > MAX_ENTRIES {
                    return Some(self.split_leaf(idx));
                }
            } else {
                unreachable!("level 1 node must be a leaf");
            }
            return None;
        }

        let chosen = self.choose_subtree(idx, &point);
        let child = match &self.nodes[idx as usize].kind {
            NodeKind::Internal(v) => v[chosen].child,
            NodeKind::Leaf(_) => unreachable!("internal level node must be internal"),
        };
        let child_split = self.insert_rec(child, level - 1, id, point);

        // Refresh the chosen branch's box to cover the new point.
        if let NodeKind::Internal(v) = &mut self.nodes[idx as usize].kind {
            v[chosen].mbr.extend_point(&point);
            // The child gained an unvisited entry: its subtree can no longer
            // be considered fully visited by any live MS-BFS instance.
            v[chosen].epoch = Epoch::CLEAR;
        }

        if let Some((sib_mbr, sib)) = child_split {
            // The split invalidated the chosen branch's box; recompute it.
            let new_child_mbr = self.node(child).mbr();
            if let NodeKind::Internal(v) = &mut self.nodes[idx as usize].kind {
                v[chosen].mbr = new_child_mbr;
                v.push(Branch {
                    mbr: sib_mbr,
                    child: sib,
                    epoch: Epoch::CLEAR,
                });
                if v.len() > MAX_ENTRIES {
                    return Some(self.split_internal(idx));
                }
            }
        }
        None
    }

    /// Least-enlargement subtree choice (ties: smaller volume, then fewer
    /// entries is irrelevant at this fan-out — first wins).
    fn choose_subtree(&self, idx: NodeIdx, point: &Point<D>) -> usize {
        let NodeKind::Internal(v) = &self.node(idx).kind else {
            unreachable!("choose_subtree on a leaf");
        };
        Self::choose_branch(v, point)
    }

    /// Static form of the least-enlargement choice, usable while the caller
    /// holds a mutable borrow of the branch list (bulk insert path).
    pub(crate) fn choose_branch(v: &[Branch<D>], point: &Point<D>) -> usize {
        let target = Aabb::from_point(*point);
        let mut best = 0usize;
        let mut best_enl = f64::INFINITY;
        let mut best_vol = f64::INFINITY;
        for (i, b) in v.iter().enumerate() {
            let enl = b.mbr.enlargement(&target);
            let vol = b.mbr.volume();
            if enl < best_enl || (enl == best_enl && vol < best_vol) {
                best = i;
                best_enl = enl;
                best_vol = vol;
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // Quadratic split
    // ------------------------------------------------------------------

    fn split_leaf(&mut self, idx: NodeIdx) -> (Aabb<D>, NodeIdx) {
        let entries = match &mut self.nodes[idx as usize].kind {
            NodeKind::Leaf(v) => std::mem::take(v),
            NodeKind::Internal(_) => unreachable!(),
        };
        let boxes: Vec<Aabb<D>> = entries.iter().map(|e| Aabb::from_point(e.point)).collect();
        let (left_ids, right_ids) = quadratic_partition(&boxes);
        let mut left = Vec::with_capacity(left_ids.len());
        let mut right = Vec::with_capacity(right_ids.len());
        let mut entries: Vec<Option<LeafEntry<D>>> = entries.into_iter().map(Some).collect();
        for i in left_ids {
            left.push(entries[i].take().expect("entry consumed twice"));
        }
        for i in right_ids {
            right.push(entries[i].take().expect("entry consumed twice"));
        }
        *self.node_mut(idx) = Node {
            kind: NodeKind::Leaf(left),
        };
        let sib = self.alloc(Node {
            kind: NodeKind::Leaf(right),
        });
        (self.node(sib).mbr(), sib)
    }

    fn split_internal(&mut self, idx: NodeIdx) -> (Aabb<D>, NodeIdx) {
        let entries = match &mut self.nodes[idx as usize].kind {
            NodeKind::Internal(v) => std::mem::take(v),
            NodeKind::Leaf(_) => unreachable!(),
        };
        let boxes: Vec<Aabb<D>> = entries.iter().map(|b| b.mbr).collect();
        let (left_ids, right_ids) = quadratic_partition(&boxes);
        let mut left = Vec::with_capacity(left_ids.len());
        let mut right = Vec::with_capacity(right_ids.len());
        let mut entries: Vec<Option<Branch<D>>> = entries.into_iter().map(Some).collect();
        for i in left_ids {
            left.push(entries[i].take().expect("entry consumed twice"));
        }
        for i in right_ids {
            right.push(entries[i].take().expect("entry consumed twice"));
        }
        *self.node_mut(idx) = Node {
            kind: NodeKind::Internal(left),
        };
        let sib = self.alloc(Node {
            kind: NodeKind::Internal(right),
        });
        (self.node(sib).mbr(), sib)
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Removes the entry with the given id located at `point`.
    ///
    /// Returns `true` if the entry was found. Underfull nodes are condensed:
    /// their surviving points are collected and reinserted, the classic
    /// Guttman treatment, which keeps the tree healthy under the heavy
    /// delete churn of a sliding window.
    pub fn remove(&mut self, id: PointId, point: Point<D>) -> bool {
        let mut orphans: Vec<LeafEntry<D>> = Vec::new();
        let found = self.remove_rec(self.root, self.height, id, &point, &mut orphans);
        if !found {
            debug_assert!(orphans.is_empty());
            return false;
        }
        self.stats.removes += 1;
        self.len -= 1;

        // Shrink the root while it is an internal node with a single child.
        while self.height > 1 {
            let (only_child, n) = match &self.node(self.root).kind {
                NodeKind::Internal(v) if v.len() == 1 => (v[0].child, 1),
                NodeKind::Internal(v) => (NO_NODE, v.len()),
                NodeKind::Leaf(_) => break,
            };
            if n == 1 {
                let old_root = self.root;
                self.root = only_child;
                self.dealloc(old_root);
                self.height -= 1;
            } else {
                break;
            }
        }

        // Reinsert points orphaned by condensed nodes. Each reinsert keeps
        // its original epoch mark: the point's visited status is a property
        // of the point, not of its slot.
        let count = orphans.len();
        for e in orphans {
            let split = self.insert_rec_entry(self.root, self.height, e);
            if let Some((mbr, sib)) = split {
                self.grow_root(mbr, sib);
            }
        }
        // insert_rec_entry does not bump len/inserts; orphans were already
        // counted when first inserted.
        let _ = count;
        true
    }

    /// Like `insert_rec` but re-inserting an existing leaf entry (keeps id,
    /// point, and epoch mark).
    pub(crate) fn insert_rec_entry(
        &mut self,
        idx: NodeIdx,
        level: usize,
        entry: LeafEntry<D>,
    ) -> Option<(Aabb<D>, NodeIdx)> {
        let point = entry.point;
        if level == 1 {
            if let NodeKind::Leaf(entries) = &mut self.nodes[idx as usize].kind {
                entries.push(entry);
                if entries.len() > MAX_ENTRIES {
                    return Some(self.split_leaf(idx));
                }
            } else {
                unreachable!();
            }
            return None;
        }
        let chosen = self.choose_subtree(idx, &point);
        let child = match &self.nodes[idx as usize].kind {
            NodeKind::Internal(v) => v[chosen].child,
            NodeKind::Leaf(_) => unreachable!(),
        };
        let child_split = self.insert_rec_entry(child, level - 1, entry);
        if let NodeKind::Internal(v) = &mut self.nodes[idx as usize].kind {
            v[chosen].mbr.extend_point(&point);
            v[chosen].epoch = Epoch::CLEAR;
        }
        if let Some((sib_mbr, sib)) = child_split {
            let new_child_mbr = self.node(child).mbr();
            if let NodeKind::Internal(v) = &mut self.nodes[idx as usize].kind {
                v[chosen].mbr = new_child_mbr;
                v.push(Branch {
                    mbr: sib_mbr,
                    child: sib,
                    epoch: Epoch::CLEAR,
                });
                if v.len() > MAX_ENTRIES {
                    return Some(self.split_internal(idx));
                }
            }
        }
        None
    }

    fn remove_rec(
        &mut self,
        idx: NodeIdx,
        level: usize,
        id: PointId,
        point: &Point<D>,
        orphans: &mut Vec<LeafEntry<D>>,
    ) -> bool {
        if level == 1 {
            let NodeKind::Leaf(entries) = &mut self.nodes[idx as usize].kind else {
                unreachable!();
            };
            if let Some(pos) = entries.iter().position(|e| e.id == id) {
                debug_assert_eq!(entries[pos].point, *point, "id located at stale position");
                entries.swap_remove(pos);
                return true;
            }
            return false;
        }

        // Scan children whose box could contain the point.
        let candidates: Vec<(usize, NodeIdx)> = match &self.node(idx).kind {
            NodeKind::Internal(v) => v
                .iter()
                .enumerate()
                .filter(|(_, b)| b.mbr.contains_point(point))
                .map(|(i, b)| (i, b.child))
                .collect(),
            NodeKind::Leaf(_) => unreachable!(),
        };

        for (slot, child) in candidates {
            if self.remove_rec(child, level - 1, id, point, orphans) {
                let child_len = self.node(child).len();
                if child_len < MIN_ENTRIES {
                    // Condense: orphan the whole subtree and drop the branch.
                    self.collect_subtree(child, orphans);
                    if let NodeKind::Internal(v) = &mut self.nodes[idx as usize].kind {
                        v.swap_remove(slot);
                    }
                } else {
                    let new_mbr = self.node(child).mbr();
                    if let NodeKind::Internal(v) = &mut self.nodes[idx as usize].kind {
                        v[slot].mbr = new_mbr;
                    }
                }
                return true;
            }
        }
        false
    }

    /// Moves every leaf entry stored under `idx` into `orphans` and frees
    /// the subtree's nodes.
    pub(crate) fn collect_subtree(&mut self, idx: NodeIdx, orphans: &mut Vec<LeafEntry<D>>) {
        match std::mem::replace(
            &mut self.nodes[idx as usize].kind,
            NodeKind::Leaf(Vec::new()),
        ) {
            NodeKind::Leaf(entries) => orphans.extend(entries),
            NodeKind::Internal(branches) => {
                for b in branches {
                    self.collect_subtree(b.child, orphans);
                }
            }
        }
        self.dealloc(idx);
    }

    // ------------------------------------------------------------------
    // Bulk load (STR)
    // ------------------------------------------------------------------

    /// Builds a tree from scratch with Sort-Tile-Recursive packing.
    ///
    /// Used to fill the first sliding window quickly; subsequent strides go
    /// through `insert`/`remove`.
    pub fn bulk_load(items: Vec<(PointId, Point<D>)>) -> Self {
        let mut tree = RTree::new();
        if items.is_empty() {
            return tree;
        }
        tree.stats.inserts = items.len() as u64;
        tree.len = items.len();

        // Pack leaves.
        let entries: Vec<LeafEntry<D>> = items
            .into_iter()
            .map(|(id, point)| LeafEntry {
                point,
                id,
                epoch: Epoch::CLEAR,
            })
            .collect();
        let leaf_cap = MAX_ENTRIES * 3 / 4; // leave slack for inserts
        let mut level: Vec<(Aabb<D>, NodeIdx)> = str_pack(entries, leaf_cap, |chunk| {
            let mut mbr = Aabb::empty();
            for e in &chunk {
                mbr.extend_point(&e.point);
            }
            (mbr, chunk)
        })
        .into_iter()
        .map(|(mbr, chunk)| {
            let idx = tree.alloc(Node {
                kind: NodeKind::Leaf(chunk),
            });
            (mbr, idx)
        })
        .collect();
        tree.height = 1;

        // Pack internal levels until one node remains.
        while level.len() > 1 {
            let branches: Vec<Branch<D>> = level
                .into_iter()
                .map(|(mbr, child)| Branch {
                    mbr,
                    child,
                    epoch: Epoch::CLEAR,
                })
                .collect();
            level = str_pack(branches, leaf_cap, |chunk| {
                let mut mbr = Aabb::empty();
                for b in &chunk {
                    mbr.extend(&b.mbr);
                }
                (mbr, chunk)
            })
            .into_iter()
            .map(|(mbr, chunk)| {
                let idx = tree.alloc(Node {
                    kind: NodeKind::Internal(chunk),
                });
                (mbr, idx)
            })
            .collect();
            tree.height += 1;
        }

        // Replace the default empty root with the packed one.
        let packed_root = level[0].1;
        tree.dealloc(tree.root);
        tree.root = packed_root;
        tree
    }

    // ------------------------------------------------------------------
    // Plain range queries
    // ------------------------------------------------------------------

    /// Calls `f(id, &point)` for every indexed point within Euclidean
    /// distance `eps` (inclusive) of `center`. Counts as one range search.
    pub fn for_each_in_ball(
        &mut self,
        center: &Point<D>,
        eps: f64,
        f: impl FnMut(PointId, &Point<D>),
    ) {
        let mut stats = self.stats;
        self.scan_ball(center, eps, f, &mut stats);
        self.stats = stats;
    }

    /// Read-only flavour of [`for_each_in_ball`](Self::for_each_in_ball):
    /// the traversal never touches the tree, and the counters go into the
    /// caller-supplied `stats` instead of the tree's own. This is what the
    /// parallel slide engine shares across workers — many `scan_ball`
    /// calls may run on `&self` concurrently, each with a private counter
    /// set, merged back afterwards (see [`Stats::merge`]).
    pub fn scan_ball(
        &self,
        center: &Point<D>,
        eps: f64,
        mut f: impl FnMut(PointId, &Point<D>),
        stats: &mut Stats,
    ) {
        stats.range_searches += 1;
        let eps2 = eps * eps;
        let mut counters = (0u64, 0u64); // (nodes visited, distance checks)
        Self::ball_rec(&self.nodes, self.root, center, eps2, &mut f, &mut counters);
        stats.nodes_visited += counters.0;
        stats.distance_checks += counters.1;
    }

    /// Allocation-free read-only descent (hot path: one call per node).
    fn ball_rec(
        nodes: &[Node<D>],
        idx: NodeIdx,
        center: &Point<D>,
        eps2: f64,
        f: &mut impl FnMut(PointId, &Point<D>),
        counters: &mut (u64, u64),
    ) {
        counters.0 += 1;
        match &nodes[idx as usize].kind {
            NodeKind::Leaf(entries) => {
                counters.1 += entries.len() as u64;
                for e in entries {
                    if center.dist2(&e.point) <= eps2 {
                        f(e.id, &e.point);
                    }
                }
            }
            NodeKind::Internal(branches) => {
                for b in branches {
                    if b.mbr.dist2_to_point(center) <= eps2 {
                        Self::ball_rec(nodes, b.child, center, eps2, f, counters);
                    }
                }
            }
        }
    }

    /// Collects the ids of points within `eps` of `center`.
    pub fn ball_ids(&mut self, center: &Point<D>, eps: f64) -> Vec<PointId> {
        let mut out = Vec::new();
        self.ball_ids_into(center, eps, &mut out);
        out
    }

    /// Like [`ball_ids`](Self::ball_ids) but clears and fills a
    /// caller-provided buffer, so query loops reuse one allocation.
    pub fn ball_ids_into(&mut self, center: &Point<D>, eps: f64, out: &mut Vec<PointId>) {
        out.clear();
        self.for_each_in_ball(center, eps, |id, _| out.push(id));
    }

    /// Counts the points within `eps` of `center`.
    pub fn ball_count(&mut self, center: &Point<D>, eps: f64) -> usize {
        let mut n = 0usize;
        self.for_each_in_ball(center, eps, |_, _| n += 1);
        n
    }

    /// Iterates over every stored `(id, point)` pair (diagnostics/tests).
    pub fn for_each(&self, mut f: impl FnMut(PointId, &Point<D>)) {
        self.for_each_rec(self.root, &mut f);
    }

    fn for_each_rec(&self, idx: NodeIdx, f: &mut impl FnMut(PointId, &Point<D>)) {
        match &self.node(idx).kind {
            NodeKind::Leaf(entries) => {
                for e in entries {
                    f(e.id, &e.point);
                }
            }
            NodeKind::Internal(branches) => {
                for b in branches {
                    self.for_each_rec(b.child, f);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests & debug builds)
    // ------------------------------------------------------------------

    /// Exhaustively validates the structural invariants; panics on breach.
    /// Only used by tests — O(n).
    pub fn check_invariants(&self) {
        let n = self.check_rec(self.root, self.height, true);
        assert_eq!(n, self.len, "len out of sync with stored entries");
    }

    fn check_rec(&self, idx: NodeIdx, level: usize, is_root: bool) -> usize {
        let node = self.node(idx);
        if level == 1 {
            assert!(node.is_leaf(), "leaf expected at level 1");
        } else {
            assert!(!node.is_leaf(), "internal expected above level 1");
        }
        if !is_root {
            assert!(
                node.len() >= 1,
                "non-root node must hold at least one entry"
            );
            assert!(node.len() <= MAX_ENTRIES, "node overflow");
        }
        match &node.kind {
            NodeKind::Leaf(entries) => entries.len(),
            NodeKind::Internal(branches) => {
                let mut total = 0;
                for b in branches {
                    let child_mbr = self.node(b.child).mbr();
                    assert!(
                        b.mbr.contains(&child_mbr),
                        "branch box must cover its child"
                    );
                    total += self.check_rec(b.child, level - 1, false);
                }
                total
            }
        }
    }
}

/// Guttman's quadratic split: picks the pair of entries whose combined box
/// wastes the most space as seeds, then assigns the rest greedily by least
/// enlargement, honouring the minimum fill of both groups.
///
/// Returns the index sets of the two groups.
pub(crate) fn quadratic_partition<const D: usize>(boxes: &[Aabb<D>]) -> (Vec<usize>, Vec<usize>) {
    let n = boxes.len();
    debug_assert!(n >= 2);

    // Seed selection: maximal dead space when paired.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = boxes[i].merge(&boxes[j]).volume() - boxes[i].volume() - boxes[j].volume();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }

    let mut left = vec![s1];
    let mut right = vec![s2];
    let mut left_mbr = boxes[s1];
    let mut right_mbr = boxes[s2];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();

    while let Some(pos) = pick_next(&remaining, boxes, &left_mbr, &right_mbr) {
        let i = remaining.swap_remove(pos);
        // Forced assignment keeps both groups above the minimum fill.
        let left_deficit = MIN_ENTRIES.saturating_sub(left.len());
        let right_deficit = MIN_ENTRIES.saturating_sub(right.len());
        let slack = remaining.len() + 1;
        let to_left = if left_deficit >= slack {
            true
        } else if right_deficit >= slack {
            false
        } else {
            let le = left_mbr.enlargement(&boxes[i]);
            let re = right_mbr.enlargement(&boxes[i]);
            if le != re {
                le < re
            } else {
                left_mbr.volume() <= right_mbr.volume()
            }
        };
        if to_left {
            left.push(i);
            left_mbr.extend(&boxes[i]);
        } else {
            right.push(i);
            right_mbr.extend(&boxes[i]);
        }
    }
    (left, right)
}

/// Picks the remaining entry with the greatest preference for one group
/// (max |d1 - d2| in Guttman's terms). Returns its position in `remaining`.
fn pick_next<const D: usize>(
    remaining: &[usize],
    boxes: &[Aabb<D>],
    left: &Aabb<D>,
    right: &Aabb<D>,
) -> Option<usize> {
    if remaining.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_pref = f64::NEG_INFINITY;
    for (pos, &i) in remaining.iter().enumerate() {
        let pref = (left.enlargement(&boxes[i]) - right.enlargement(&boxes[i])).abs();
        if pref > best_pref {
            best_pref = pref;
            best = pos;
        }
    }
    Some(best)
}

/// Sort-Tile-Recursive grouping: sorts `items` by the first axis of their
/// key boxes (already implicit in arrival order here we simply chunk after a
/// single sort pass), then tiles into runs of `cap`.
///
/// For simplicity this uses a one-dimensional sort by the first coordinate
/// of each item's box centre — adequate for packing (query performance is
/// dominated by subsequent incremental maintenance anyway).
fn str_pack<T, K>(items: Vec<T>, cap: usize, finish: impl Fn(Vec<T>) -> K) -> Vec<K>
where
    T: StrSortable,
{
    let mut items = items;
    items.sort_by(|a, b| a.sort_key().partial_cmp(&b.sort_key()).unwrap());
    let mut out = Vec::with_capacity(items.len() / cap + 1);
    let mut chunk = Vec::with_capacity(cap);
    for item in items {
        chunk.push(item);
        if chunk.len() == cap {
            out.push(finish(std::mem::replace(
                &mut chunk,
                Vec::with_capacity(cap),
            )));
        }
    }
    if !chunk.is_empty() {
        out.push(finish(chunk));
    }
    out
}

impl<const D: usize> disc_telemetry::MemoryFootprint for RTree<D> {
    /// Arena accounting: the node slab (plus free list), per-node entry
    /// vectors, and the epoch marks embedded in every entry (reported
    /// separately so their overhead is visible, though they live inline).
    fn footprint(&self) -> disc_telemetry::FootprintNode {
        use disc_telemetry::FootprintNode;
        let epoch = std::mem::size_of::<Epoch>();
        let mut entry_bytes = 0usize;
        let mut marks = 0usize;
        for n in &self.nodes {
            let (cap, each) = match &n.kind {
                NodeKind::Leaf(v) => (v.capacity(), std::mem::size_of::<LeafEntry<D>>()),
                NodeKind::Internal(v) => (v.capacity(), std::mem::size_of::<Branch<D>>()),
            };
            entry_bytes += cap * (each - epoch);
            marks += cap * epoch;
        }
        let arena = self.nodes.capacity() * std::mem::size_of::<Node<D>>()
            + self.free.capacity() * std::mem::size_of::<NodeIdx>();
        FootprintNode::branch(
            "rtree",
            vec![
                FootprintNode::leaf("nodes", arena),
                FootprintNode::leaf("entries", entry_bytes),
                FootprintNode::leaf("epoch_marks", marks),
            ],
        )
    }
}

trait StrSortable {
    fn sort_key(&self) -> f64;
}

impl<const D: usize> StrSortable for LeafEntry<D> {
    fn sort_key(&self) -> f64 {
        self.point[0]
    }
}

impl<const D: usize> StrSortable for Branch<D> {
    fn sort_key(&self) -> f64 {
        self.mbr.center_along(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: u64) -> Vec<(PointId, Point<2>)> {
        // Deterministic pseudo-random points via a simple LCG.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n)
            .map(|i| (PointId(i), Point::new([next() * 100.0, next() * 100.0])))
            .collect()
    }

    #[test]
    fn empty_tree_basics() {
        let mut t: RTree<2> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.ball_count(&Point::origin(), 10.0), 0);
        assert!(!t.remove(PointId(0), Point::origin()));
        t.check_invariants();
    }

    #[test]
    fn insert_then_query_small() {
        let mut t: RTree<2> = RTree::new();
        t.insert(PointId(1), Point::new([0.0, 0.0]));
        t.insert(PointId(2), Point::new([1.0, 0.0]));
        t.insert(PointId(3), Point::new([5.0, 5.0]));
        assert_eq!(t.len(), 3);
        let mut ids = t.ball_ids(&Point::new([0.0, 0.0]), 1.5);
        ids.sort();
        assert_eq!(ids, vec![PointId(1), PointId(2)]);
        t.check_invariants();
    }

    #[test]
    fn query_matches_linear_scan_after_many_inserts() {
        let items = pts(500);
        let mut t: RTree<2> = RTree::new();
        for (id, p) in &items {
            t.insert(*id, *p);
        }
        t.check_invariants();
        for (qi, (_, q)) in items.iter().enumerate().step_by(37) {
            let _ = qi;
            let mut got = t.ball_ids(q, 7.5);
            got.sort();
            let mut want: Vec<PointId> = items
                .iter()
                .filter(|(_, p)| q.within(p, 7.5))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn remove_half_then_queries_still_match() {
        let items = pts(400);
        let mut t: RTree<2> = RTree::new();
        for (id, p) in &items {
            t.insert(*id, *p);
        }
        for (id, p) in items.iter().filter(|(id, _)| id.raw() % 2 == 0) {
            assert!(t.remove(*id, *p), "must find {id}");
        }
        t.check_invariants();
        assert_eq!(t.len(), 200);
        let live: Vec<&(PointId, Point<2>)> =
            items.iter().filter(|(id, _)| id.raw() % 2 == 1).collect();
        for (_, q) in live.iter().step_by(19) {
            let mut got = t.ball_ids(q, 9.0);
            got.sort();
            let mut want: Vec<PointId> = live
                .iter()
                .filter(|(_, p)| q.within(p, 9.0))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn remove_everything_leaves_an_empty_tree() {
        let items = pts(300);
        let mut t: RTree<2> = RTree::new();
        for (id, p) in &items {
            t.insert(*id, *p);
        }
        for (id, p) in &items {
            assert!(t.remove(*id, *p));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1, "root must collapse back to a single leaf");
        t.check_invariants();
        assert_eq!(t.ball_count(&Point::new([50.0, 50.0]), 1000.0), 0);
    }

    #[test]
    fn duplicate_coordinates_are_distinguished_by_id() {
        let mut t: RTree<2> = RTree::new();
        let p = Point::new([1.0, 1.0]);
        for i in 0..40 {
            t.insert(PointId(i), p);
        }
        assert_eq!(t.ball_count(&p, 0.0), 40);
        assert!(t.remove(PointId(17), p));
        assert_eq!(t.ball_count(&p, 0.0), 39);
        assert!(!t.remove(PointId(17), p), "already gone");
        t.check_invariants();
    }

    #[test]
    fn bulk_load_equals_incremental_inserts_for_queries() {
        let items = pts(800);
        let bulk = RTree::bulk_load(items.clone());
        bulk.check_invariants();
        assert_eq!(bulk.len(), items.len());
        let mut bulk = bulk;
        let mut incr: RTree<2> = RTree::new();
        for (id, p) in &items {
            incr.insert(*id, *p);
        }
        for (_, q) in items.iter().step_by(53) {
            let mut a = bulk.ball_ids(q, 6.0);
            let mut b = incr.ball_ids(q, 6.0);
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_load_then_mutate() {
        let items = pts(600);
        let mut t = RTree::bulk_load(items.clone());
        for (id, p) in items.iter().take(200) {
            assert!(t.remove(*id, *p));
        }
        for i in 0..100u64 {
            t.insert(PointId(10_000 + i), Point::new([i as f64, i as f64]));
        }
        t.check_invariants();
        assert_eq!(t.len(), 600 - 200 + 100);
    }

    #[test]
    fn stats_count_range_searches() {
        let mut t: RTree<2> = RTree::new();
        for (id, p) in pts(50) {
            t.insert(id, p);
        }
        t.reset_stats();
        let _ = t.ball_count(&Point::new([1.0, 1.0]), 2.0);
        let _ = t.ball_ids(&Point::new([2.0, 2.0]), 2.0);
        assert_eq!(t.stats().range_searches, 2);
        assert_eq!(t.stats().epoch_probes, 0);
        assert!(t.stats().nodes_visited >= 2);
    }

    #[test]
    fn quadratic_partition_respects_min_fill() {
        let boxes: Vec<Aabb<2>> = (0..(MAX_ENTRIES + 1))
            .map(|i| Aabb::from_point(Point::new([i as f64, 0.0])))
            .collect();
        let (l, r) = quadratic_partition(&boxes);
        assert_eq!(l.len() + r.len(), MAX_ENTRIES + 1);
        assert!(l.len() >= MIN_ENTRIES.min(l.len() + r.len() - MIN_ENTRIES));
        assert!(!l.is_empty() && !r.is_empty());
        assert!(l.len() >= MIN_ENTRIES || r.len() >= MIN_ENTRIES);
        // All indices accounted for exactly once.
        let mut all: Vec<usize> = l.iter().chain(r.iter()).copied().collect();
        all.sort();
        assert_eq!(all, (0..=MAX_ENTRIES).collect::<Vec<_>>());
    }

    #[test]
    fn four_dimensional_tree_works() {
        let mut t: RTree<4> = RTree::new();
        for i in 0..200u64 {
            let f = i as f64;
            t.insert(PointId(i), Point::new([f, f * 0.5, -f, f.sin()]));
        }
        t.check_invariants();
        let hits = t.ball_count(&Point::new([10.0, 5.0, -10.0, 0.0]), 2.0);
        assert!(hits >= 1);
    }
}

impl<const D: usize> RTree<D> {
    /// Calls `f(id, &point)` for every indexed point inside `rect`
    /// (inclusive bounds). Counts as one range search.
    ///
    /// ```
    /// use disc_geom::{Aabb, Point, PointId};
    /// use disc_index::RTree;
    ///
    /// let mut tree: RTree<2> = RTree::new();
    /// for i in 0..10 {
    ///     tree.insert(PointId(i), Point::new([i as f64, 0.0]));
    /// }
    /// let rect = Aabb::new(Point::new([2.5, -1.0]), Point::new([6.5, 1.0]));
    /// let mut hits = Vec::new();
    /// tree.for_each_in_rect(&rect, |id, _| hits.push(id.raw()));
    /// hits.sort();
    /// assert_eq!(hits, vec![3, 4, 5, 6]);
    /// ```
    pub fn for_each_in_rect(&mut self, rect: &Aabb<D>, mut f: impl FnMut(PointId, &Point<D>)) {
        self.stats.range_searches += 1;
        let mut counters = (0u64, 0u64);
        Self::rect_rec(&self.nodes, self.root, rect, &mut f, &mut counters);
        self.stats.nodes_visited += counters.0;
        self.stats.distance_checks += counters.1;
    }

    fn rect_rec(
        nodes: &[Node<D>],
        idx: NodeIdx,
        rect: &Aabb<D>,
        f: &mut impl FnMut(PointId, &Point<D>),
        counters: &mut (u64, u64),
    ) {
        counters.0 += 1;
        match &nodes[idx as usize].kind {
            NodeKind::Leaf(entries) => {
                counters.1 += entries.len() as u64;
                for e in entries {
                    if rect.contains_point(&e.point) {
                        f(e.id, &e.point);
                    }
                }
            }
            NodeKind::Internal(branches) => {
                for b in branches {
                    if b.mbr.intersects(rect) {
                        Self::rect_rec(nodes, b.child, rect, f, counters);
                    }
                }
            }
        }
    }

    /// Collects the ids of points inside `rect`.
    pub fn rect_ids(&mut self, rect: &Aabb<D>) -> Vec<PointId> {
        let mut out = Vec::new();
        self.rect_ids_into(rect, &mut out);
        out
    }

    /// Like [`rect_ids`](Self::rect_ids) but clears and fills a
    /// caller-provided buffer, so query loops reuse one allocation.
    pub fn rect_ids_into(&mut self, rect: &Aabb<D>, out: &mut Vec<PointId>) {
        out.clear();
        self.for_each_in_rect(rect, |id, _| out.push(id));
    }
}

#[cfg(test)]
mod rect_tests {
    use super::*;

    #[test]
    fn rect_query_matches_linear_scan() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64 * 50.0
        };
        let items: Vec<(PointId, Point<2>)> = (0..400)
            .map(|i| (PointId(i), Point::new([next(), next()])))
            .collect();
        let mut tree = RTree::bulk_load(items.clone());
        for (lo, hi) in [
            ([5.0, 5.0], [20.0, 30.0]),
            ([0.0, 0.0], [50.0, 50.0]),
            ([48.0, 48.0], [49.0, 49.0]),
        ] {
            let rect = Aabb::new(Point::new(lo), Point::new(hi));
            let mut got = tree.rect_ids(&rect);
            got.sort();
            let mut want: Vec<PointId> = items
                .iter()
                .filter(|(_, p)| rect.contains_point(p))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn empty_rect_returns_nothing() {
        let mut tree: RTree<2> = RTree::new();
        tree.insert(PointId(0), Point::new([1.0, 1.0]));
        let rect = Aabb::new(Point::new([5.0, 5.0]), Point::new([6.0, 6.0]));
        assert!(tree.rect_ids(&rect).is_empty());
    }
}
