//! A uniform-grid spatial backend with ε-aligned cells.
//!
//! The standard fast path for low-dimensional density clustering: space is
//! partitioned into axis-aligned cubic cells of edge length ε (the engine's
//! query radius), stored sparsely in a hash map keyed by integer cell
//! coordinates. An ε-ball query then touches at most the 3^D cells of the
//! center's neighbourhood — O(1) in the window size — and every mutation is
//! a hash-map update, with none of the R-tree's rebalancing.
//!
//! The trade-offs against the R-tree, measured by the `backend` bench suite:
//!
//! * mutations are O(1) vs. O(log n) descent + split/condense;
//! * range answering scans whole cells, so the grid examines more candidate
//!   points per query than the R-tree's tight boxes when data is very
//!   non-uniform within cells (skew concentrates many points in one cell);
//! * queries with `eps` much larger than the cell width degrade (the cell
//!   range grows as `(2⌈eps/cell⌉+1)^D`), so the grid is sized from the
//!   engine's ε hint and shines when queries use that ε.
//!
//! Epoch marks are grid-native: each cell entry carries the same
//! `(tick, owner)` pair as an R-tree leaf entry, and each *cell* carries the
//! analogue of a branch stamp — when every entry of a cell is visited at the
//! current tick by one resolved owner, the cell is stamped and later probes
//! by that (merged) thread skip it wholesale (counted in
//! [`Stats::subtrees_pruned`]).

use crate::epoch::{EpochProbe, ProbeOutcome};
use crate::node::Epoch;
use crate::stats::Stats;
use disc_geom::{Aabb, FxHashMap, Point, PointId};

/// One stored point plus its epoch mark.
#[derive(Clone, Debug)]
struct GridEntry<const D: usize> {
    id: PointId,
    point: Point<D>,
    epoch: Epoch,
}

/// One occupied cell. Cells are created on first insert and dropped when
/// their last entry leaves, so the map only ever holds occupied cells.
#[derive(Clone, Debug)]
struct Cell<const D: usize> {
    entries: Vec<GridEntry<D>>,
    /// Cell-level stamp: set when every entry carries the current tick and
    /// one resolved owner (the grid analogue of a branch epoch).
    epoch: Epoch,
}

impl<const D: usize> Cell<D> {
    fn new() -> Self {
        Cell {
            entries: Vec::new(),
            epoch: Epoch::CLEAR,
        }
    }
}

/// A uniform grid over `D`-dimensional points with ε-aligned cells.
///
/// Construct through
/// [`SpatialBackend::with_eps_hint`](crate::SpatialBackend::with_eps_hint)
/// or [`GridIndex::with_cell`]; the cell edge length should equal the ε the
/// owning engine queries with.
#[derive(Clone, Debug)]
pub struct GridIndex<const D: usize> {
    /// Cell edge length.
    cell: f64,
    /// `1.0 / cell`, precomputed for the key mapping.
    inv_cell: f64,
    cells: FxHashMap<[i64; D], Cell<D>>,
    len: usize,
    tick_counter: u64,
    stats: Stats,
}

impl<const D: usize> GridIndex<D> {
    /// Creates an empty grid with the given cell edge length.
    pub fn with_cell(cell: f64) -> Self {
        assert!(
            cell > 0.0 && cell.is_finite(),
            "grid cell width must be positive and finite"
        );
        GridIndex {
            cell,
            inv_cell: 1.0 / cell,
            cells: FxHashMap::default(),
            len: 0,
            tick_counter: 0,
            stats: Stats::default(),
        }
    }

    /// The cell edge length in force.
    pub fn cell_width(&self) -> f64 {
        self.cell
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of occupied cells (diagnostics; memory is proportional).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Read access to the operation counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Mutable access to the operation counters: the parallel engine merges
    /// per-worker [`Stats`] deltas back here after a read-only scan phase.
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Integer cell coordinates of `point`.
    #[inline]
    fn key_of(&self, point: &Point<D>) -> [i64; D] {
        let mut key = [0i64; D];
        for (d, k) in key.iter_mut().enumerate() {
            *k = (point[d] * self.inv_cell).floor() as i64;
        }
        key
    }

    /// The closed box covered by cell `key`.
    #[inline]
    fn cell_box(&self, key: &[i64; D]) -> Aabb<D> {
        let mut lo = Point::origin();
        let mut hi = Point::origin();
        for d in 0..D {
            lo[d] = key[d] as f64 * self.cell;
            hi[d] = (key[d] + 1) as f64 * self.cell;
        }
        Aabb::new(lo, hi)
    }

    /// Inserts a point. Duplicate `(id, point)` pairs are the caller's
    /// responsibility; the grid stores whatever it is given.
    pub fn insert(&mut self, id: PointId, point: Point<D>) {
        debug_assert!(point.is_finite(), "refusing to index a non-finite point");
        self.stats.inserts += 1;
        let key = self.key_of(&point);
        let cell = self.cells.entry(key).or_insert_with(Cell::new);
        cell.entries.push(GridEntry {
            id,
            point,
            epoch: Epoch::CLEAR,
        });
        // A fresh (unvisited) entry invalidates any uniform-ownership stamp.
        cell.epoch = Epoch::CLEAR;
        self.len += 1;
    }

    /// Removes the entry for `id` at `point`; returns whether it was found.
    pub fn remove(&mut self, id: PointId, point: Point<D>) -> bool {
        let key = self.key_of(&point);
        let Some(cell) = self.cells.get_mut(&key) else {
            return false;
        };
        let Some(pos) = cell.entries.iter().position(|e| e.id == id) else {
            return false;
        };
        cell.entries.swap_remove(pos);
        if cell.entries.is_empty() {
            self.cells.remove(&key);
        }
        self.stats.removes += 1;
        self.len -= 1;
        true
    }

    /// Inserts a batch. Grid inserts are already O(1), so this is the plain
    /// loop; it still counts as one batched mutation for the accounting,
    /// and one traversal unit (cell access) per item so the counter stays
    /// comparable with the R-tree's batched-descent accounting.
    pub fn bulk_insert(&mut self, items: Vec<(PointId, Point<D>)>) {
        if items.is_empty() {
            return;
        }
        self.stats.bulk_insert_batches += 1;
        self.stats.bulk_nodes_visited += items.len() as u64;
        for (id, p) in items {
            self.insert(id, p);
        }
    }

    /// Removes a batch; returns how many entries were found and removed.
    ///
    /// Accounting mirrors the R-tree bulk path: every cell access is a
    /// `bulk_nodes_visited` unit, every entry examined while locating an id
    /// (the whole cell on a miss) is a `bulk_leaf_scans` unit.
    pub fn bulk_remove(&mut self, items: &[(PointId, Point<D>)]) -> usize {
        if items.is_empty() {
            return 0;
        }
        self.stats.bulk_remove_batches += 1;
        let mut removed = 0;
        for (id, p) in items {
            self.stats.bulk_nodes_visited += 1;
            let key = self.key_of(p);
            let Some(cell) = self.cells.get_mut(&key) else {
                continue;
            };
            let pos = cell.entries.iter().position(|e| e.id == *id);
            self.stats.bulk_leaf_scans += match pos {
                Some(p) => p as u64 + 1,
                None => cell.entries.len() as u64,
            };
            let Some(pos) = pos else {
                continue;
            };
            cell.entries.swap_remove(pos);
            if cell.entries.is_empty() {
                self.cells.remove(&key);
            }
            self.stats.removes += 1;
            self.len -= 1;
            removed += 1;
        }
        removed
    }

    /// Visits every cell key of the integer box covering the ε-ball around
    /// `center` (the 3^D neighbourhood when `eps == cell`).
    #[inline]
    fn for_each_cell_in_range(
        center: &Point<D>,
        eps: f64,
        inv_cell: f64,
        mut visit: impl FnMut([i64; D]),
    ) {
        let mut lo = [0i64; D];
        let mut hi = [0i64; D];
        for d in 0..D {
            lo[d] = ((center[d] - eps) * inv_cell).floor() as i64;
            hi[d] = ((center[d] + eps) * inv_cell).floor() as i64;
        }
        let mut key = lo;
        loop {
            visit(key);
            // Odometer increment over the D axes.
            let mut d = 0;
            loop {
                key[d] += 1;
                if key[d] <= hi[d] {
                    break;
                }
                key[d] = lo[d];
                d += 1;
                if d == D {
                    return;
                }
            }
        }
    }

    /// Calls `f(id, point)` for every stored point within `eps` of `center`
    /// (inclusive), in unspecified order.
    pub fn for_each_in_ball(
        &mut self,
        center: &Point<D>,
        eps: f64,
        f: impl FnMut(PointId, &Point<D>),
    ) {
        let mut stats = self.stats;
        self.scan_ball(center, eps, f, &mut stats);
        self.stats = stats;
    }

    /// Read-only flavour of [`for_each_in_ball`](Self::for_each_in_ball)
    /// with caller-supplied counters; shareable across workers on `&self`
    /// (see the R-tree counterpart for the parallel-engine contract).
    pub fn scan_ball(
        &self,
        center: &Point<D>,
        eps: f64,
        mut f: impl FnMut(PointId, &Point<D>),
        stats: &mut Stats,
    ) {
        stats.range_searches += 1;
        let eps2 = eps * eps;
        let mut cells_visited = 0u64;
        let mut dist_checks = 0u64;
        let cells = &self.cells;
        let inv_cell = self.inv_cell;
        let cell_w = self.cell;
        Self::for_each_cell_in_range(center, eps, inv_cell, |key| {
            let Some(cell) = cells.get(&key) else { return };
            if cell_min_dist2(&key, cell_w, center) > eps2 {
                return; // corner cell of the box, entirely out of range
            }
            cells_visited += 1;
            dist_checks += cell.entries.len() as u64;
            for e in &cell.entries {
                if center.dist2(&e.point) <= eps2 {
                    f(e.id, &e.point);
                }
            }
        });
        stats.nodes_visited += cells_visited;
        stats.distance_checks += dist_checks;
    }

    /// Clears `out` and fills it with the ids within `eps` of `center`.
    pub fn ball_ids_into(&mut self, center: &Point<D>, eps: f64, out: &mut Vec<PointId>) {
        out.clear();
        self.for_each_in_ball(center, eps, |id, _| out.push(id));
    }

    /// Counts the points within `eps` of `center`.
    pub fn ball_count(&mut self, center: &Point<D>, eps: f64) -> usize {
        let mut n = 0usize;
        self.for_each_in_ball(center, eps, |_, _| n += 1);
        n
    }

    /// Multi-center ε-ball traversal; see
    /// [`SpatialBackend::for_each_in_balls`](crate::SpatialBackend::for_each_in_balls).
    ///
    /// Cells have no shared upper levels to amortise, so the centers are
    /// served one by one; the batched-path counters still record the call so
    /// the ablation tables can compare like with like. Counts as
    /// `centers.len()` range searches, matching the R-tree path.
    pub fn for_each_in_balls(
        &mut self,
        centers: &[Point<D>],
        eps: f64,
        f: impl FnMut(usize, PointId, &Point<D>),
    ) {
        let mut stats = self.stats;
        self.scan_balls(centers, eps, f, &mut stats);
        self.stats = stats;
    }

    /// Read-only flavour of [`for_each_in_balls`](Self::for_each_in_balls)
    /// with caller-supplied counters; shareable across workers on `&self`
    /// (see the R-tree counterpart for the parallel-engine contract).
    pub fn scan_balls(
        &self,
        centers: &[Point<D>],
        eps: f64,
        mut f: impl FnMut(usize, PointId, &Point<D>),
        stats: &mut Stats,
    ) {
        if centers.is_empty() {
            return;
        }
        stats.range_searches += centers.len() as u64;
        stats.multi_ball_queries += 1;
        stats.multi_ball_centers += centers.len() as u64;
        let eps2 = eps * eps;
        let mut cells_visited = 0u64;
        let mut leaf_scans = 0u64;
        let cells = &self.cells;
        let inv_cell = self.inv_cell;
        let cell_w = self.cell;
        for (ci, center) in centers.iter().enumerate() {
            Self::for_each_cell_in_range(center, eps, inv_cell, |key| {
                let Some(cell) = cells.get(&key) else { return };
                if cell_min_dist2(&key, cell_w, center) > eps2 {
                    return;
                }
                cells_visited += 1;
                leaf_scans += cell.entries.len() as u64;
                for e in &cell.entries {
                    if center.dist2(&e.point) <= eps2 {
                        f(ci, e.id, &e.point);
                    }
                }
            });
        }
        stats.bulk_nodes_visited += cells_visited;
        stats.bulk_leaf_scans += leaf_scans;
    }

    /// Iterates over every stored `(id, point)` pair (diagnostics/tests).
    pub fn for_each(&self, mut f: impl FnMut(PointId, &Point<D>)) {
        for cell in self.cells.values() {
            for e in &cell.entries {
                f(e.id, &e.point);
            }
        }
    }

    // ------------------------------------------------------------------
    // Epoch probing (grid-native marks)
    // ------------------------------------------------------------------

    /// Starts a new MS-BFS instance (fresh tick; prior marks become stale).
    pub fn begin_epoch(&mut self) -> EpochProbe {
        self.tick_counter += 1;
        EpochProbe::with_tick(self.tick_counter)
    }

    /// Marks the entry for `id` (stored at `center`) as visited by `owner`.
    pub fn mark_visited(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        id: PointId,
        owner: u32,
    ) -> bool {
        let key = self.key_of(center);
        let Some(cell) = self.cells.get_mut(&key) else {
            return false;
        };
        let Some(e) = cell.entries.iter_mut().find(|e| e.id == id) else {
            return false;
        };
        e.epoch = Epoch {
            tick: probe.tick(),
            owner,
        };
        // The mark may break a same-tick uniform-ownership stamp (a starter
        // seeded into a cell another thread already swept), so drop it; it
        // is re-derived on the next covering probe.
        cell.epoch = Epoch::CLEAR;
        true
    }

    /// One epoch-based ε-range search for MS-BFS thread `thread`; same
    /// fresh/foreign/prune contract as the R-tree (see [`crate::epoch`]).
    #[allow(clippy::too_many_arguments)]
    pub fn epoch_probe(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        eps: f64,
        thread: u32,
        resolve: &mut dyn FnMut(u32) -> u32,
        is_vertex: &mut dyn FnMut(PointId) -> bool,
        out: &mut ProbeOutcome<D>,
    ) {
        self.stats.range_searches += 1;
        self.stats.epoch_probes += 1;
        let tick = probe.tick();
        let eps2 = eps * eps;
        let mut cells_visited = 0u64;
        let mut dist_checks = 0u64;
        let mut pruned = 0u64;
        let cells = &mut self.cells;
        let inv_cell = self.inv_cell;
        let cell_w = self.cell;
        Self::for_each_cell_in_range(center, eps, inv_cell, |key| {
            let Some(cell) = cells.get_mut(&key) else {
                return;
            };
            if cell_min_dist2(&key, cell_w, center) > eps2 {
                return;
            }
            cells_visited += 1;
            // Whole cell already visited by this (merged) thread: nothing
            // new inside.
            if cell.epoch.tick == tick && resolve(cell.epoch.owner) == thread {
                pruned += 1;
                return;
            }
            dist_checks += cell.entries.len() as u64;
            for e in &mut cell.entries {
                if center.dist2(&e.point) > eps2 || !is_vertex(e.id) {
                    continue;
                }
                if e.epoch.tick == tick {
                    let owner = resolve(e.epoch.owner);
                    if owner != thread {
                        out.foreign.push((e.id, owner));
                    }
                    // Same thread: already in its visited set, skip.
                } else {
                    e.epoch = Epoch {
                        tick,
                        owner: thread,
                    };
                    out.fresh.push((e.id, e.point));
                }
            }
            // Stamp the cell when every entry now carries this tick and one
            // resolved owner — only worth scanning when the ball covered the
            // whole cell or a stamp at this tick already existed, mirroring
            // the R-tree's backtrack rule.
            let covered = cell_max_dist2(&key, cell_w, center) <= eps2;
            if covered || cell.epoch.tick == tick {
                let mut owner: Option<u32> = None;
                for e in &cell.entries {
                    if e.epoch.tick != tick {
                        owner = None;
                        break;
                    }
                    let o = resolve(e.epoch.owner);
                    match owner {
                        None => owner = Some(o),
                        Some(prev) if prev != o => {
                            owner = None;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                if let Some(owner) = owner {
                    cell.epoch = Epoch { tick, owner };
                }
            }
        });
        self.stats.nodes_visited += cells_visited;
        self.stats.distance_checks += dist_checks;
        self.stats.subtrees_pruned += pruned;
    }

    /// Validates internal invariants exhaustively (test helper).
    pub fn check_invariants(&self) {
        let mut n = 0usize;
        for (key, cell) in &self.cells {
            assert!(!cell.entries.is_empty(), "empty cell survived at {key:?}");
            let cbox = self.cell_box(key);
            for e in &cell.entries {
                let mut expect = [0i64; D];
                for (d, k) in expect.iter_mut().enumerate() {
                    *k = (e.point[d] * self.inv_cell).floor() as i64;
                }
                assert_eq!(&expect, key, "entry {} filed in the wrong cell", e.id);
                assert!(
                    cbox.contains_point(&e.point) || cbox.dist2_to_point(&e.point) < 1e-12,
                    "entry {} outside its cell box",
                    e.id
                );
            }
            n += cell.entries.len();
        }
        assert_eq!(n, self.len, "len out of sync with stored entries");
    }
}

impl<const D: usize> disc_telemetry::MemoryFootprint for GridIndex<D> {
    fn footprint(&self) -> disc_telemetry::FootprintNode {
        use disc_telemetry::FootprintNode;
        let epoch = std::mem::size_of::<Epoch>();
        let per_entry = std::mem::size_of::<GridEntry<D>>();
        // The map's own table (keys + Cell headers, including the cell-level
        // stamp which lives inline in the Cell struct).
        let table = disc_telemetry::map_bytes(
            self.cells.capacity(),
            std::mem::size_of::<([i64; D], Cell<D>)>(),
        );
        // Per-cell entry vectors, split so epoch marks show up as their own
        // line while the sum stays exact: every slot is (payload + mark).
        let mut slots = 0usize;
        for cell in self.cells.values() {
            slots += cell.entries.capacity();
        }
        FootprintNode::branch(
            "grid",
            vec![
                FootprintNode::leaf("cells", table + slots * (per_entry - epoch)),
                FootprintNode::leaf("stamps", slots * epoch),
            ],
        )
    }
}

impl<const D: usize> crate::SpatialBackend<D> for GridIndex<D> {
    const NAME: &'static str = "grid";

    fn with_eps_hint(eps_hint: f64) -> Self {
        GridIndex::with_cell(eps_hint)
    }

    fn len(&self) -> usize {
        GridIndex::len(self)
    }

    fn stats(&self) -> &Stats {
        GridIndex::stats(self)
    }

    fn reset_stats(&mut self) {
        GridIndex::reset_stats(self)
    }

    fn stats_mut(&mut self) -> &mut Stats {
        GridIndex::stats_mut(self)
    }

    fn insert(&mut self, id: PointId, point: Point<D>) {
        GridIndex::insert(self, id, point)
    }

    fn remove(&mut self, id: PointId, point: Point<D>) -> bool {
        GridIndex::remove(self, id, point)
    }

    fn bulk_insert(&mut self, items: Vec<(PointId, Point<D>)>) {
        GridIndex::bulk_insert(self, items)
    }

    fn bulk_remove(&mut self, items: &[(PointId, Point<D>)]) -> usize {
        GridIndex::bulk_remove(self, items)
    }

    fn for_each_in_ball<F: FnMut(PointId, &Point<D>)>(
        &mut self,
        center: &Point<D>,
        eps: f64,
        f: F,
    ) {
        GridIndex::for_each_in_ball(self, center, eps, f)
    }

    fn scan_ball<F: FnMut(PointId, &Point<D>)>(
        &self,
        center: &Point<D>,
        eps: f64,
        f: F,
        stats: &mut Stats,
    ) {
        GridIndex::scan_ball(self, center, eps, f, stats)
    }

    fn ball_ids_into(&mut self, center: &Point<D>, eps: f64, out: &mut Vec<PointId>) {
        GridIndex::ball_ids_into(self, center, eps, out)
    }

    fn ball_count(&mut self, center: &Point<D>, eps: f64) -> usize {
        GridIndex::ball_count(self, center, eps)
    }

    fn for_each_in_balls<F: FnMut(usize, PointId, &Point<D>)>(
        &mut self,
        centers: &[Point<D>],
        eps: f64,
        f: F,
    ) {
        GridIndex::for_each_in_balls(self, centers, eps, f)
    }

    fn scan_balls<F: FnMut(usize, PointId, &Point<D>)>(
        &self,
        centers: &[Point<D>],
        eps: f64,
        f: F,
        stats: &mut Stats,
    ) {
        GridIndex::scan_balls(self, centers, eps, f, stats)
    }

    fn for_each<F: FnMut(PointId, &Point<D>)>(&self, f: F) {
        GridIndex::for_each(self, f)
    }

    fn begin_epoch(&mut self) -> EpochProbe {
        GridIndex::begin_epoch(self)
    }

    fn mark_visited(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        id: PointId,
        owner: u32,
    ) -> bool {
        GridIndex::mark_visited(self, probe, center, id, owner)
    }

    fn epoch_probe(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        eps: f64,
        thread: u32,
        resolve: &mut dyn FnMut(u32) -> u32,
        is_vertex: &mut dyn FnMut(PointId) -> bool,
        out: &mut ProbeOutcome<D>,
    ) {
        GridIndex::epoch_probe(self, probe, center, eps, thread, resolve, is_vertex, out)
    }

    fn check_invariants(&self) {
        GridIndex::check_invariants(self)
    }
}

/// Squared distance from `center` to the closed box of cell `key` (0 when
/// inside). Free function so closures over the cell map can use it without
/// borrowing the whole index.
#[inline]
fn cell_min_dist2<const D: usize>(key: &[i64; D], cell: f64, center: &Point<D>) -> f64 {
    let mut acc = 0.0;
    for d in 0..D {
        let lo = key[d] as f64 * cell;
        let hi = (key[d] + 1) as f64 * cell;
        let c = center[d];
        let delta = if c < lo {
            lo - c
        } else if c > hi {
            c - hi
        } else {
            0.0
        };
        acc += delta * delta;
    }
    acc
}

/// Squared distance from `center` to the farthest corner of cell `key`.
#[inline]
fn cell_max_dist2<const D: usize>(key: &[i64; D], cell: f64, center: &Point<D>) -> f64 {
    let mut acc = 0.0;
    for d in 0..D {
        let lo = key[d] as f64 * cell;
        let hi = (key[d] + 1) as f64 * cell;
        let c = center[d];
        let delta = (c - lo).abs().max((c - hi).abs());
        acc += delta * delta;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_of(n: usize) -> GridIndex<2> {
        // n x n unit-spaced points, cell width 1.5.
        let mut g = GridIndex::with_cell(1.5);
        let mut id = 0u64;
        for x in 0..n {
            for y in 0..n {
                g.insert(PointId(id), Point::new([x as f64, y as f64]));
                id += 1;
            }
        }
        g
    }

    /// Brute-force oracle for ball answers.
    fn oracle(g: &GridIndex<2>, center: Point<2>, eps: f64) -> Vec<PointId> {
        let mut out = Vec::new();
        g.for_each(|id, p| {
            if center.within(p, eps) {
                out.push(id);
            }
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn ball_answers_match_brute_force() {
        let mut g = grid_of(12);
        for (cx, cy, eps) in [
            (5.5, 5.5, 1.5),
            (0.0, 0.0, 2.0),
            (11.0, 11.0, 1.0),
            (-3.0, 4.0, 5.0),
            (6.0, 6.0, 0.0),
            (3.3, 8.7, 4.25),
        ] {
            let c = Point::new([cx, cy]);
            let want = oracle(&g, c, eps);
            let mut got = Vec::new();
            g.ball_ids_into(&c, eps, &mut got);
            got.sort_unstable();
            assert_eq!(got, want, "center {c:?} eps {eps}");
            assert_eq!(g.ball_count(&c, eps), want.len());
        }
    }

    #[test]
    fn ball_answers_are_exact_for_negative_coordinates() {
        let mut g = GridIndex::<2>::with_cell(1.0);
        for (i, xy) in [(-2.5, -2.5), (-0.5, -0.5), (0.5, 0.5), (-1.0, 0.0)]
            .iter()
            .enumerate()
        {
            g.insert(PointId(i as u64), Point::new([xy.0, xy.1]));
        }
        let c = Point::new([-0.75, -0.25]);
        let want = oracle(&g, c, 1.1);
        let mut got = Vec::new();
        g.ball_ids_into(&c, 1.1, &mut got);
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn insert_remove_roundtrip_keeps_invariants() {
        let mut g = grid_of(6);
        assert_eq!(g.len(), 36);
        g.check_invariants();
        for id in 0..18u64 {
            let p = Point::new([(id / 6) as f64, (id % 6) as f64]);
            assert!(g.remove(PointId(id), p));
        }
        assert_eq!(g.len(), 18);
        g.check_invariants();
        assert!(!g.remove(PointId(0), Point::new([0.0, 0.0])));
        assert!(!g.remove(PointId(999), Point::new([50.0, 50.0])));
    }

    #[test]
    fn bulk_paths_count_batches() {
        let mut g = GridIndex::<2>::with_cell(1.0);
        let items: Vec<(PointId, Point<2>)> = (0..10u64)
            .map(|i| (PointId(i), Point::new([i as f64, 0.0])))
            .collect();
        g.bulk_insert(items.clone());
        assert_eq!(g.stats().bulk_insert_batches, 1);
        assert_eq!(g.stats().inserts, 10);
        assert_eq!(g.bulk_remove(&items), 10);
        assert_eq!(g.stats().bulk_remove_batches, 1);
        assert!(g.is_empty());
        assert_eq!(g.occupied_cells(), 0);
    }

    #[test]
    fn multi_center_traversal_matches_per_center_queries() {
        let mut g = grid_of(10);
        let centers = [
            Point::new([2.0, 2.0]),
            Point::new([7.5, 7.5]),
            Point::new([2.0, 2.0]), // duplicate center: reported twice
        ];
        let mut got: Vec<Vec<PointId>> = vec![Vec::new(); centers.len()];
        g.for_each_in_balls(&centers, 1.6, |ci, id, _| got[ci].push(id));
        for (ci, c) in centers.iter().enumerate() {
            let mut want = Vec::new();
            g.ball_ids_into(c, 1.6, &mut want);
            want.sort_unstable();
            got[ci].sort_unstable();
            assert_eq!(got[ci], want, "center {ci}");
        }
        assert_eq!(g.stats().multi_ball_queries, 1);
        assert_eq!(g.stats().multi_ball_centers, 3);
    }

    #[test]
    fn probe_returns_each_vertex_once_per_instance() {
        let mut g = grid_of(8);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        let c = Point::new([3.5, 3.5]);
        g.epoch_probe(probe, &c, 2.0, 0, &mut resolve, &mut all, &mut out);
        let first = out.fresh.len();
        assert!(first > 0);
        assert!(out.foreign.is_empty());
        out.clear();
        g.epoch_probe(probe, &c, 2.0, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), 0, "second probe must see nothing fresh");
        assert!(out.foreign.is_empty(), "same thread never reports foreign");
    }

    #[test]
    fn new_instance_sees_everything_again() {
        let mut g = grid_of(6);
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        let c = Point::new([2.0, 2.0]);
        let p1 = g.begin_epoch();
        g.epoch_probe(p1, &c, 1.5, 0, &mut resolve, &mut all, &mut out);
        let n1 = out.fresh.len();
        out.clear();
        let p2 = g.begin_epoch();
        g.epoch_probe(p2, &c, 1.5, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), n1);
    }

    #[test]
    fn foreign_thread_is_reported_not_hidden() {
        let mut g = grid_of(8);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        g.epoch_probe(
            probe,
            &Point::new([2.0, 2.0]),
            1.5,
            0,
            &mut resolve,
            &mut all,
            &mut out,
        );
        let visited_by_0: Vec<PointId> = out.fresh.iter().map(|(id, _)| *id).collect();
        out.clear();
        g.epoch_probe(
            probe,
            &Point::new([3.0, 2.0]),
            1.5,
            1,
            &mut resolve,
            &mut all,
            &mut out,
        );
        assert!(
            !out.foreign.is_empty(),
            "overlap with thread 0 must surface as foreign hits"
        );
        for (id, owner) in &out.foreign {
            assert_eq!(*owner, 0);
            assert!(visited_by_0.contains(id));
        }
        for (id, _) in &out.fresh {
            assert!(!visited_by_0.contains(id));
        }
    }

    #[test]
    fn merged_threads_prune_each_others_cells() {
        let mut g = grid_of(8);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut all = |_: PointId| true;
        {
            let mut resolve = |o: u32| o;
            g.epoch_probe(
                probe,
                &Point::new([2.0, 2.0]),
                2.0,
                0,
                &mut resolve,
                &mut all,
                &mut out,
            );
        }
        out.clear();
        {
            // After a merge both slots resolve to 0: re-probing the same
            // region yields nothing fresh and nothing foreign.
            let mut resolve = |_: u32| 0;
            g.epoch_probe(
                probe,
                &Point::new([2.0, 2.0]),
                2.0,
                0,
                &mut resolve,
                &mut all,
                &mut out,
            );
        }
        assert!(out.fresh.is_empty());
        assert!(out.foreign.is_empty());
    }

    #[test]
    fn non_vertices_are_invisible_to_probes() {
        let mut g = grid_of(4);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut even = |id: PointId| id.raw().is_multiple_of(2);
        g.epoch_probe(
            probe,
            &Point::new([1.5, 1.5]),
            5.0,
            0,
            &mut resolve,
            &mut even,
            &mut out,
        );
        assert!(out.fresh.iter().all(|(id, _)| id.raw() % 2 == 0));
        assert_eq!(out.fresh.len(), 8, "16 grid points, half are vertices");
        out.clear();
        let mut all = |_: PointId| true;
        g.epoch_probe(
            probe,
            &Point::new([1.5, 1.5]),
            5.0,
            0,
            &mut resolve,
            &mut all,
            &mut out,
        );
        assert_eq!(out.fresh.len(), 8, "the odd half is still fresh");
    }

    #[test]
    fn pruning_happens_for_repeat_probes() {
        let mut g = grid_of(16);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        // A ball covering the whole grid guarantees every cell is fully
        // visited and therefore stamped for pruning.
        let c = Point::new([8.0, 8.0]);
        g.epoch_probe(probe, &c, 25.0, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), 256);
        let before = g.stats().subtrees_pruned;
        out.clear();
        g.epoch_probe(probe, &c, 25.0, 0, &mut resolve, &mut all, &mut out);
        let after = g.stats().subtrees_pruned;
        assert!(
            after > before,
            "a repeat probe over a fully-visited region must prune cells"
        );
    }

    #[test]
    fn insert_into_stamped_cell_unstamps_it() {
        let mut g = grid_of(4);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        let c = Point::new([2.0, 2.0]);
        // Cover everything so cells get stamped.
        g.epoch_probe(probe, &c, 10.0, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), 16);
        // A new arrival lands in a stamped cell; the same instance must
        // still discover it.
        g.insert(PointId(99), Point::new([2.1, 2.1]));
        out.clear();
        g.epoch_probe(probe, &c, 10.0, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), 1);
        assert_eq!(out.fresh[0].0, PointId(99));
    }

    #[test]
    fn mark_visited_seeds_starters() {
        let mut g = grid_of(4);
        let probe = g.begin_epoch();
        let p = Point::new([1.0, 1.0]);
        assert!(g.mark_visited(probe, &p, PointId(5), 3));
        assert!(!g.mark_visited(probe, &p, PointId(77), 3), "unknown id");
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        g.epoch_probe(probe, &p, 1.0, 0, &mut resolve, &mut all, &mut out);
        // The marked starter shows up as a foreign hit of thread 3.
        assert!(out.foreign.contains(&(PointId(5), 3)));
        assert!(out.fresh.iter().all(|(id, _)| *id != PointId(5)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_width_is_rejected() {
        let _ = GridIndex::<2>::with_cell(0.0);
    }
}
