//! A Morton-curve-ordered flat spatial backend.
//!
//! Entries live in struct-of-arrays columns (one `Vec<f64>` per dimension
//! plus id/tick/epoch columns, see [`disc_geom::soa`]) sorted by the Morton
//! key of their ε-aligned cell, ties broken by id. "Cell" means exactly what
//! it means for [`GridIndex`](crate::GridIndex) — the axis-aligned cube of
//! edge ε containing the point — but instead of hashing cells, the curve
//! order makes each cell a *contiguous run* of rows, and makes nearby cells
//! nearby runs:
//!
//! * **ε-ball answering** — the query box (the grid's 3^D neighbourhood)
//!   decomposes into O(log) contiguous key ranges
//!   ([`disc_geom::soa::morton_ranges`]); each range is two binary searches
//!   plus a linear sweep over SoA columns through the 4-wide ε-filter kernel.
//!   Runs are corner-distance rejected exactly like grid cells.
//! * **bulk construction** — STR-spirited: sort the batch once, then one
//!   backward in-place merge with the resident rows (every resident row
//!   moves at most once; 1.0-fill since flat columns have no node slack).
//! * **stride eviction** — the window driver always evicts the oldest
//!   stride. Rather than deleting per entry (R-tree: descend + condense
//!   each; grid: hash probe each), the batch is located run-by-run and the
//!   survivors compacted in one O(batch + shift) teardown pass over the
//!   flat columns — the teardown-tree bulk-delete idea applied to a sorted
//!   array.
//! * **epoch probing** — per-entry `(tick, owner)` marks in an epoch
//!   column; the cell-stamp analogue of grid cells / R-tree branches is a
//!   small hash map keyed by Morton key, cleared at `begin_epoch`.
//!
//! The trade-off against the grid is mutation cost (a sorted array shifts
//! on single inserts) in exchange for cache-linear scans and the cheap
//! teardown eviction; DISC's slide path is bulk-everything, so the single
//! mutation paths only serve the `enable_bulk_slide = false` ablation.

use crate::epoch::{EpochProbe, ProbeOutcome};
use crate::node::Epoch;
use crate::stats::Stats;
use disc_geom::soa::{
    eps_mask_block, morton_bits, morton_cell_coord, morton_decode, morton_ranges, PointStore,
};
use disc_geom::{FxHashMap, Point, PointId};

/// Budget for the box→ranges decomposition; past this the decomposition
/// over-covers (still exact — runs are corner-rejected and exact-filtered).
const MAX_QUERY_RANGES: usize = 64;

/// A Morton-ordered flat index over `D`-dimensional points with ε-aligned
/// cells. Construct through
/// [`SpatialBackend::with_eps_hint`](crate::SpatialBackend::with_eps_hint)
/// or [`CurveIndex::with_cell`].
#[derive(Clone, Debug)]
pub struct CurveIndex<const D: usize> {
    /// Cell edge length.
    cell: f64,
    /// `1.0 / cell`, precomputed for the key mapping.
    inv_cell: f64,
    /// Morton key per row, sorted ascending (ties broken by ascending id).
    keys: Vec<u64>,
    /// SoA coordinate/id/arrival-tick columns, parallel to `keys`.
    rows: PointStore<D>,
    /// Per-entry epoch marks, parallel to `keys`.
    epochs: Vec<Epoch>,
    /// Cell-level stamps (the analogue of grid cell / R-tree branch
    /// epochs), keyed by Morton key. Cleared when a new epoch begins.
    stamps: FxHashMap<u64, Epoch>,
    /// Monotone arrival counter feeding the tick column.
    arrivals: u64,
    tick_counter: u64,
    stats: Stats,
}

impl<const D: usize> CurveIndex<D> {
    /// Creates an empty index with the given cell edge length.
    pub fn with_cell(cell: f64) -> Self {
        assert!(
            cell > 0.0 && cell.is_finite(),
            "curve cell width must be positive and finite"
        );
        CurveIndex {
            cell,
            inv_cell: 1.0 / cell,
            keys: Vec::new(),
            rows: PointStore::new(),
            epochs: Vec::new(),
            stamps: FxHashMap::default(),
            arrivals: 0,
            tick_counter: 0,
            stats: Stats::default(),
        }
    }

    /// The cell edge length in force.
    pub fn cell_width(&self) -> f64 {
        self.cell
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of distinct occupied cells, i.e. key runs (diagnostics).
    pub fn occupied_cells(&self) -> usize {
        let mut n = 0usize;
        let mut prev = None;
        for &k in &self.keys {
            if prev != Some(k) {
                n += 1;
                prev = Some(k);
            }
        }
        n
    }

    /// Read access to the operation counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Mutable access to the operation counters: the parallel engine merges
    /// per-worker [`Stats`] deltas back here after a read-only scan phase.
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Morton key of `point`.
    #[inline]
    fn key_of(&self, point: &Point<D>) -> u64 {
        disc_geom::soa::morton_key(point, self.inv_cell)
    }

    /// Rank of `(key, id)` in the sorted order: `Ok(row)` if present,
    /// `Err(insertion_row)` otherwise.
    fn locate(&self, key: u64, id: PointId) -> Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = self.keys.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let probe = (self.keys[mid], self.rows.id_at(mid));
            if probe < (key, id.raw()) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < self.keys.len() && self.keys[lo] == key && self.rows.id_at(lo) == id.raw() {
            Ok(lo)
        } else {
            Err(lo)
        }
    }

    /// Row span `[start, end)` of the run for `key`.
    fn run_of(&self, key: u64) -> (usize, usize) {
        let start = self.keys.partition_point(|&k| k < key);
        let end = self.keys.partition_point(|&k| k <= key);
        (start, end)
    }

    /// Inserts a point (O(n) shift; the slide path uses the bulk routes).
    pub fn insert(&mut self, id: PointId, point: Point<D>) {
        debug_assert!(point.is_finite(), "refusing to index a non-finite point");
        self.stats.inserts += 1;
        let key = self.key_of(&point);
        let row = match self.locate(key, id) {
            Ok(_) => panic!("duplicate curve entry for {id}"),
            Err(row) => row,
        };
        self.keys.insert(row, key);
        self.epochs.insert(row, Epoch::CLEAR);
        self.rows.insert_row(row, id.raw(), self.arrivals, &point);
        self.arrivals += 1;
        // A fresh (unvisited) entry invalidates any uniform-ownership stamp.
        self.stamps.remove(&key);
    }

    /// Removes the entry for `id` at `point`; returns whether it was found.
    pub fn remove(&mut self, id: PointId, point: Point<D>) -> bool {
        let key = self.key_of(&point);
        let Ok(row) = self.locate(key, id) else {
            return false;
        };
        self.keys.remove(row);
        self.epochs.remove(row);
        self.rows.remove_row(row);
        self.stats.removes += 1;
        true
    }

    /// Bulk construction/merge: sorts the batch by (key, id) and merges it
    /// into the resident rows backward in place — one pass, every resident
    /// row moves at most once, no per-item binary search.
    pub fn bulk_insert(&mut self, items: Vec<(PointId, Point<D>)>) {
        if items.is_empty() {
            return;
        }
        self.stats.bulk_insert_batches += 1;
        self.stats.bulk_nodes_visited += items.len() as u64;
        self.stats.inserts += items.len() as u64;
        let mut batch: Vec<(u64, PointId, Point<D>)> = items
            .into_iter()
            .map(|(id, p)| {
                debug_assert!(p.is_finite(), "refusing to index a non-finite point");
                (self.key_of(&p), id, p)
            })
            .collect();
        batch.sort_unstable_by_key(|&(key, id, _)| (key, id.raw()));
        for &(key, _, _) in &batch {
            self.stamps.remove(&key);
        }
        // Arrival ticks are handed out in batch (sorted) order.
        let first_tick = self.arrivals;
        self.arrivals += batch.len() as u64;

        let n = self.keys.len();
        let m = batch.len();
        self.keys.resize(n + m, 0);
        self.epochs.resize(n + m, Epoch::CLEAR);
        self.rows.resize_rows(n + m);
        let mut i = n; // resident rows left to place
        let mut j = m; // batch rows left to place
        let mut w = n + m; // next write position (exclusive)
        while j > 0 {
            let b = &batch[j - 1];
            if i > 0 && (self.keys[i - 1], self.rows.id_at(i - 1)) > (b.0, b.1.raw()) {
                w -= 1;
                i -= 1;
                if w != i {
                    self.keys[w] = self.keys[i];
                    self.epochs[w] = self.epochs[i];
                    self.rows.copy_row_within(i, w);
                }
            } else {
                w -= 1;
                j -= 1;
                self.keys[w] = b.0;
                self.epochs[w] = Epoch::CLEAR;
                self.rows.set_row(w, b.1.raw(), first_tick + j as u64, &b.2);
            }
        }
    }

    /// Teardown-style bulk removal; returns how many entries were found and
    /// removed.
    ///
    /// The batch is sorted by (key, id), each item located in its run (the
    /// per-item cell access and entry scans are counted exactly like the
    /// grid's: one `bulk_nodes_visited` per item, `bulk_leaf_scans` for the
    /// entries examined), and then the survivors are compacted in a single
    /// left-to-right pass over all columns — O(batch·log n + shift), with
    /// every survivor moving at most once regardless of how the evicted
    /// stride is scattered across the curve.
    pub fn bulk_remove(&mut self, items: &[(PointId, Point<D>)]) -> usize {
        if items.is_empty() {
            return 0;
        }
        self.stats.bulk_remove_batches += 1;
        if let Some(removed) = self.teardown_contiguous(items) {
            return removed;
        }
        let mut keep = vec![true; self.keys.len()];
        let mut removed = 0usize;
        for (id, p) in items {
            self.stats.bulk_nodes_visited += 1;
            let key = self.key_of(p);
            let (start, end) = self.run_of(key);
            let mut found = None;
            let mut scanned = 0u64;
            for (row, &kept) in keep.iter().enumerate().take(end).skip(start) {
                if !kept {
                    continue; // already claimed by this batch
                }
                scanned += 1;
                if self.rows.id_at(row) == id.raw() {
                    found = Some(row);
                    break;
                }
            }
            self.stats.bulk_leaf_scans += scanned;
            if let Some(row) = found {
                keep[row] = false;
                self.stats.removes += 1;
                removed += 1;
            }
        }
        if removed > 0 {
            let mut w = 0usize;
            for (r, &k) in keep.iter().enumerate() {
                if k {
                    if w != r {
                        self.keys[w] = self.keys[r];
                        self.epochs[w] = self.epochs[r];
                    }
                    w += 1;
                }
            }
            self.keys.truncate(w);
            self.epochs.truncate(w);
            self.rows.compact_retain(&keep);
        }
        removed
    }

    /// Stride-teardown fast path for [`bulk_remove`](Self::bulk_remove):
    /// when the batch's ids form a contiguous, duplicate-free arrival
    /// range — the shape every window eviction has, since the driver
    /// always evicts the oldest stride — the per-item `(key, id)` binary
    /// searches collapse into one branch-light sweep over the id column
    /// that emits the survivor runs directly, and the compaction becomes
    /// one memmove per run per column. A candidate row is dropped only
    /// when its stored key matches the key derived from the batch's point
    /// for that id, the same check the per-item path performs through its
    /// run scan, so a stale coordinate skips the row identically. Returns
    /// `None` (with the index and stats untouched) when the batch does
    /// not have the teardown shape.
    fn teardown_contiguous(&mut self, items: &[(PointId, Point<D>)]) -> Option<usize> {
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for (id, _) in items {
            lo = lo.min(id.raw());
            hi = hi.max(id.raw());
        }
        if hi - lo + 1 != items.len() as u64 {
            return None;
        }
        // One expected key per arrival slot; a duplicate id means the
        // range has a hole elsewhere, so fall back to the general path.
        let mut batch_keys = vec![0u64; items.len()];
        let mut seen = vec![false; items.len()];
        for (id, p) in items {
            let slot = (id.raw() - lo) as usize;
            if seen[slot] {
                return None;
            }
            seen[slot] = true;
            batch_keys[slot] = self.key_of(p);
        }
        self.stats.bulk_nodes_visited += items.len() as u64;
        let n = self.keys.len();
        let mut runs: Vec<(usize, usize)> = Vec::with_capacity(items.len() + 1);
        let mut run_start = 0usize;
        let mut removed = 0usize;
        let mut leaf_scans = 0u64;
        let span = hi - lo;
        {
            // Two-phase sweep per 64-row block: a branchless in-range
            // bitmask over the id column (one compare for both bounds —
            // ids below `lo` wrap to huge), then only the set bits walk
            // the key check. Candidate rows are a scattered minority, so
            // folding the range test into data flow instead of a
            // mispredicted branch per row pays for the extra pass.
            let ids = self.rows.ids();
            for (w, chunk) in ids.chunks(64).enumerate() {
                let mut word = 0u64;
                for (b, &id) in chunk.iter().enumerate() {
                    word |= ((id.wrapping_sub(lo) <= span) as u64) << b;
                }
                leaf_scans += u64::from(word.count_ones());
                while word != 0 {
                    let row = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    if self.keys[row] == batch_keys[(ids[row] - lo) as usize] {
                        if run_start < row {
                            runs.push((run_start, row));
                        }
                        run_start = row + 1;
                        removed += 1;
                    }
                }
            }
        }
        self.stats.bulk_leaf_scans += leaf_scans;
        self.stats.removes += removed as u64;
        if removed == 0 {
            return Some(0);
        }
        if run_start < n {
            runs.push((run_start, n));
        }
        let mut w = 0usize;
        for &(s, e) in &runs {
            if w != s {
                self.keys.copy_within(s..e, w);
            }
            w += e - s;
        }
        self.keys.truncate(w);
        // Epoch stamps are deliberately *not* realigned: a stamp is only
        // ever read back under the tick that wrote it, `begin_epoch`
        // monotonically outruns every stored tick, and no probe is live
        // across a bulk removal (removal and MS-BFS are separate slide
        // phases), so the stale stamps left behind read as unvisited.
        self.epochs.truncate(w);
        self.rows.compact_runs(&runs);
        Some(removed)
    }

    /// The biased cell-coordinate box covering the ε-ball around `center`.
    #[inline]
    fn query_box(&self, center: &Point<D>, eps: f64) -> ([u32; D], [u32; D]) {
        let bits = morton_bits(D);
        let lo = std::array::from_fn(|d| morton_cell_coord(center[d] - eps, self.inv_cell, bits));
        let hi = std::array::from_fn(|d| morton_cell_coord(center[d] + eps, self.inv_cell, bits));
        (lo, hi)
    }

    /// Walks every key run intersecting the ε-ball's cell box, calling
    /// `visit(key, start, end)` per run. Runs are *not* corner-rejected
    /// here — callers do that so they control the counter accounting.
    fn for_each_run_in_range(
        keys: &[u64],
        ranges: &[(u64, u64)],
        mut visit: impl FnMut(u64, usize, usize),
    ) {
        for &(rlo, rhi) in ranges {
            let mut i = keys.partition_point(|&k| k < rlo);
            let span_end = keys.partition_point(|&k| k <= rhi);
            while i < span_end {
                let key = keys[i];
                let mut j = i + 1;
                while j < span_end && keys[j] == key {
                    j += 1;
                }
                visit(key, i, j);
                i = j;
            }
        }
    }

    /// Calls `f(id, point)` for every stored point within `eps` of `center`
    /// (inclusive), in unspecified order.
    pub fn for_each_in_ball(
        &mut self,
        center: &Point<D>,
        eps: f64,
        f: impl FnMut(PointId, &Point<D>),
    ) {
        let mut stats = self.stats;
        self.scan_ball(center, eps, f, &mut stats);
        self.stats = stats;
    }

    /// Read-only flavour of [`for_each_in_ball`](Self::for_each_in_ball)
    /// with caller-supplied counters; shareable across workers on `&self`
    /// (see the R-tree counterpart for the parallel-engine contract).
    pub fn scan_ball(
        &self,
        center: &Point<D>,
        eps: f64,
        mut f: impl FnMut(PointId, &Point<D>),
        stats: &mut Stats,
    ) {
        stats.range_searches += 1;
        let (runs, checks) = self.scan_one(center, eps, &mut f);
        stats.nodes_visited += runs;
        stats.distance_checks += checks;
    }

    /// Shared single-center scan core; returns (runs visited, distance
    /// checks) so callers can file them under per-point or bulk counters.
    fn scan_one(
        &self,
        center: &Point<D>,
        eps: f64,
        f: &mut impl FnMut(PointId, &Point<D>),
    ) -> (u64, u64) {
        let eps2 = eps * eps;
        let (lo, hi) = self.query_box(center, eps);
        let mut ranges = Vec::with_capacity(16);
        morton_ranges(&lo, &hi, MAX_QUERY_RANGES, &mut ranges);
        let cols = self.rows.col_slices();
        let mut runs_visited = 0u64;
        let mut dist_checks = 0u64;
        Self::for_each_run_in_range(&self.keys, &ranges, |key, start, end| {
            let cell = morton_decode::<D>(key);
            if cell_min_dist2(&cell, self.cell, center) > eps2 {
                return; // corner run of the box, entirely out of range
            }
            runs_visited += 1;
            dist_checks += (end - start) as u64;
            let mut at = start;
            while at < end {
                let n = (end - at).min(64);
                let mut mask = eps_mask_block(&cols, at, n, center, eps2);
                while mask != 0 {
                    let bit = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let row = at + bit;
                    let p = self.rows.point_at(row);
                    f(PointId(self.rows.id_at(row)), &p);
                }
                at += n;
            }
        });
        (runs_visited, dist_checks)
    }

    /// Clears `out` and fills it with the ids within `eps` of `center`.
    pub fn ball_ids_into(&mut self, center: &Point<D>, eps: f64, out: &mut Vec<PointId>) {
        out.clear();
        self.for_each_in_ball(center, eps, |id, _| out.push(id));
    }

    /// Counts the points within `eps` of `center`.
    pub fn ball_count(&mut self, center: &Point<D>, eps: f64) -> usize {
        let mut n = 0usize;
        self.for_each_in_ball(center, eps, |_, _| n += 1);
        n
    }

    /// Multi-center ε-ball traversal; see
    /// [`SpatialBackend::for_each_in_balls`](crate::SpatialBackend::for_each_in_balls).
    ///
    /// Served center by center (curve ranges per center are already
    /// contiguous scans); counts as `centers.len()` range searches plus one
    /// batched traversal, matching the other backends' accounting.
    pub fn for_each_in_balls(
        &mut self,
        centers: &[Point<D>],
        eps: f64,
        f: impl FnMut(usize, PointId, &Point<D>),
    ) {
        let mut stats = self.stats;
        self.scan_balls(centers, eps, f, &mut stats);
        self.stats = stats;
    }

    /// Read-only flavour of [`for_each_in_balls`](Self::for_each_in_balls)
    /// with caller-supplied counters; same sharing contract as
    /// [`scan_ball`](Self::scan_ball).
    pub fn scan_balls(
        &self,
        centers: &[Point<D>],
        eps: f64,
        mut f: impl FnMut(usize, PointId, &Point<D>),
        stats: &mut Stats,
    ) {
        if centers.is_empty() {
            return;
        }
        stats.range_searches += centers.len() as u64;
        stats.multi_ball_queries += 1;
        stats.multi_ball_centers += centers.len() as u64;
        for (ci, center) in centers.iter().enumerate() {
            let (runs, checks) = self.scan_one(center, eps, &mut |id, p| f(ci, id, p));
            stats.bulk_nodes_visited += runs;
            stats.bulk_leaf_scans += checks;
        }
    }

    /// Iterates over every stored `(id, point)` pair (diagnostics/tests).
    pub fn for_each(&self, mut f: impl FnMut(PointId, &Point<D>)) {
        for row in 0..self.keys.len() {
            let p = self.rows.point_at(row);
            f(PointId(self.rows.id_at(row)), &p);
        }
    }

    // ------------------------------------------------------------------
    // Epoch probing (curve-native marks)
    // ------------------------------------------------------------------

    /// Starts a new MS-BFS instance (fresh tick; prior marks become stale).
    pub fn begin_epoch(&mut self) -> EpochProbe {
        self.tick_counter += 1;
        self.stamps.clear();
        EpochProbe::with_tick(self.tick_counter)
    }

    /// Marks the entry for `id` (stored at `center`) as visited by `owner`.
    pub fn mark_visited(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        id: PointId,
        owner: u32,
    ) -> bool {
        let key = self.key_of(center);
        let Ok(row) = self.locate(key, id) else {
            return false;
        };
        self.epochs[row] = Epoch {
            tick: probe.tick(),
            owner,
        };
        // The mark may break a same-tick uniform-ownership stamp (a starter
        // seeded into a run another thread already swept), so drop it.
        self.stamps.remove(&key);
        true
    }

    /// One epoch-based ε-range search for MS-BFS thread `thread`; same
    /// fresh/foreign/prune contract as the other backends (see
    /// [`crate::epoch`]).
    #[allow(clippy::too_many_arguments)]
    pub fn epoch_probe(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        eps: f64,
        thread: u32,
        resolve: &mut dyn FnMut(u32) -> u32,
        is_vertex: &mut dyn FnMut(PointId) -> bool,
        out: &mut ProbeOutcome<D>,
    ) {
        self.stats.range_searches += 1;
        self.stats.epoch_probes += 1;
        let tick = probe.tick();
        let eps2 = eps * eps;
        let (lo, hi) = self.query_box(center, eps);
        let mut ranges = Vec::with_capacity(16);
        morton_ranges(&lo, &hi, MAX_QUERY_RANGES, &mut ranges);
        let mut runs_visited = 0u64;
        let mut dist_checks = 0u64;
        let mut pruned = 0u64;
        // Collect run bounds first: the scan below mutates the epoch column.
        let mut run_bounds: Vec<(u64, usize, usize)> = Vec::new();
        Self::for_each_run_in_range(&self.keys, &ranges, |key, start, end| {
            run_bounds.push((key, start, end));
        });
        for (key, start, end) in run_bounds {
            let cell = morton_decode::<D>(key);
            if cell_min_dist2(&cell, self.cell, center) > eps2 {
                continue;
            }
            runs_visited += 1;
            let stamp = self.stamps.get(&key).copied().unwrap_or(Epoch::CLEAR);
            // Whole run already visited by this (merged) thread: nothing
            // new inside.
            if stamp.tick == tick && resolve(stamp.owner) == thread {
                pruned += 1;
                continue;
            }
            dist_checks += (end - start) as u64;
            for row in start..end {
                let p = self.rows.point_at(row);
                let id = PointId(self.rows.id_at(row));
                if center.dist2(&p) > eps2 || !is_vertex(id) {
                    continue;
                }
                let e = &mut self.epochs[row];
                if e.tick == tick {
                    let owner = resolve(e.owner);
                    if owner != thread {
                        out.foreign.push((id, owner));
                    }
                    // Same thread: already in its visited set, skip.
                } else {
                    *e = Epoch {
                        tick,
                        owner: thread,
                    };
                    out.fresh.push((id, p));
                }
            }
            // Stamp the run when every entry now carries this tick and one
            // resolved owner — only worth scanning when the ball covered the
            // whole cell or a stamp at this tick already existed, mirroring
            // the grid's rule.
            let covered = cell_max_dist2(&cell, self.cell, center) <= eps2;
            if covered || stamp.tick == tick {
                let mut owner: Option<u32> = None;
                for e in &self.epochs[start..end] {
                    if e.tick != tick {
                        owner = None;
                        break;
                    }
                    let o = resolve(e.owner);
                    match owner {
                        None => owner = Some(o),
                        Some(prev) if prev != o => {
                            owner = None;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                if let Some(owner) = owner {
                    self.stamps.insert(key, Epoch { tick, owner });
                }
            }
        }
        self.stats.nodes_visited += runs_visited;
        self.stats.distance_checks += dist_checks;
        self.stats.subtrees_pruned += pruned;
    }

    /// Validates internal invariants exhaustively (test helper).
    pub fn check_invariants(&self) {
        assert_eq!(self.keys.len(), self.rows.len(), "keys/rows desync");
        assert_eq!(self.keys.len(), self.epochs.len(), "keys/epochs desync");
        for row in 0..self.keys.len() {
            let p = self.rows.point_at(row);
            assert_eq!(
                self.keys[row],
                self.key_of(&p),
                "row {row} filed under the wrong curve key"
            );
            if row > 0 {
                let prev = (self.keys[row - 1], self.rows.id_at(row - 1));
                let here = (self.keys[row], self.rows.id_at(row));
                assert!(prev < here, "curve order violated at row {row}");
            }
        }
    }
}

impl<const D: usize> disc_telemetry::MemoryFootprint for CurveIndex<D> {
    fn footprint(&self) -> disc_telemetry::FootprintNode {
        use disc_telemetry::FootprintNode;
        // The flat vec is the curve key column plus the SoA geometry rows
        // that ride in lockstep with it.
        let flat = self.keys.capacity() * std::mem::size_of::<u64>() + self.rows.heap_bytes();
        let epochs = self.epochs.capacity() * std::mem::size_of::<Epoch>();
        let stamps =
            disc_telemetry::map_bytes(self.stamps.capacity(), std::mem::size_of::<(u64, Epoch)>());
        FootprintNode::branch(
            "curve",
            vec![
                FootprintNode::leaf("flat", flat),
                FootprintNode::leaf("epochs", epochs),
                FootprintNode::leaf("stamps", stamps),
            ],
        )
    }
}

impl<const D: usize> crate::SpatialBackend<D> for CurveIndex<D> {
    const NAME: &'static str = "curve";

    fn with_eps_hint(eps_hint: f64) -> Self {
        CurveIndex::with_cell(eps_hint)
    }

    fn len(&self) -> usize {
        CurveIndex::len(self)
    }

    fn stats(&self) -> &Stats {
        CurveIndex::stats(self)
    }

    fn reset_stats(&mut self) {
        CurveIndex::reset_stats(self)
    }

    fn stats_mut(&mut self) -> &mut Stats {
        CurveIndex::stats_mut(self)
    }

    fn insert(&mut self, id: PointId, point: Point<D>) {
        CurveIndex::insert(self, id, point)
    }

    fn remove(&mut self, id: PointId, point: Point<D>) -> bool {
        CurveIndex::remove(self, id, point)
    }

    fn bulk_insert(&mut self, items: Vec<(PointId, Point<D>)>) {
        CurveIndex::bulk_insert(self, items)
    }

    fn bulk_remove(&mut self, items: &[(PointId, Point<D>)]) -> usize {
        CurveIndex::bulk_remove(self, items)
    }

    fn for_each_in_ball<F: FnMut(PointId, &Point<D>)>(
        &mut self,
        center: &Point<D>,
        eps: f64,
        f: F,
    ) {
        CurveIndex::for_each_in_ball(self, center, eps, f)
    }

    fn scan_ball<F: FnMut(PointId, &Point<D>)>(
        &self,
        center: &Point<D>,
        eps: f64,
        f: F,
        stats: &mut Stats,
    ) {
        CurveIndex::scan_ball(self, center, eps, f, stats)
    }

    fn ball_ids_into(&mut self, center: &Point<D>, eps: f64, out: &mut Vec<PointId>) {
        CurveIndex::ball_ids_into(self, center, eps, out)
    }

    fn ball_count(&mut self, center: &Point<D>, eps: f64) -> usize {
        CurveIndex::ball_count(self, center, eps)
    }

    fn for_each_in_balls<F: FnMut(usize, PointId, &Point<D>)>(
        &mut self,
        centers: &[Point<D>],
        eps: f64,
        f: F,
    ) {
        CurveIndex::for_each_in_balls(self, centers, eps, f)
    }

    fn scan_balls<F: FnMut(usize, PointId, &Point<D>)>(
        &self,
        centers: &[Point<D>],
        eps: f64,
        f: F,
        stats: &mut Stats,
    ) {
        CurveIndex::scan_balls(self, centers, eps, f, stats)
    }

    fn for_each<F: FnMut(PointId, &Point<D>)>(&self, f: F) {
        CurveIndex::for_each(self, f)
    }

    fn begin_epoch(&mut self) -> EpochProbe {
        CurveIndex::begin_epoch(self)
    }

    fn mark_visited(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        id: PointId,
        owner: u32,
    ) -> bool {
        CurveIndex::mark_visited(self, probe, center, id, owner)
    }

    fn epoch_probe(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        eps: f64,
        thread: u32,
        resolve: &mut dyn FnMut(u32) -> u32,
        is_vertex: &mut dyn FnMut(PointId) -> bool,
        out: &mut ProbeOutcome<D>,
    ) {
        CurveIndex::epoch_probe(self, probe, center, eps, thread, resolve, is_vertex, out)
    }

    fn check_invariants(&self) {
        CurveIndex::check_invariants(self)
    }
}

/// Squared distance from `center` to the closed box of the cell with biased
/// coordinates `cell` (0 when inside). Boundary (clamped) coordinates stand
/// for a half-unbounded region, so their dimension contributes nothing —
/// conservative and exact, since every candidate is distance-filtered.
#[inline]
fn cell_min_dist2<const D: usize>(cell: &[u32; D], width: f64, center: &Point<D>) -> f64 {
    let bits = morton_bits(D);
    let bias = 1i64 << (bits - 1);
    let top = (1u32 << bits) - 1;
    let mut acc = 0.0;
    for d in 0..D {
        if cell[d] == 0 || cell[d] == top {
            continue;
        }
        let lo = (cell[d] as i64 - bias) as f64 * width;
        let hi = lo + width;
        let c = center[d];
        let delta = if c < lo {
            lo - c
        } else if c > hi {
            c - hi
        } else {
            0.0
        };
        acc += delta * delta;
    }
    acc
}

/// Squared distance from `center` to the farthest corner of the cell;
/// infinite for boundary (clamped) cells, which are never "covered".
#[inline]
fn cell_max_dist2<const D: usize>(cell: &[u32; D], width: f64, center: &Point<D>) -> f64 {
    let bits = morton_bits(D);
    let bias = 1i64 << (bits - 1);
    let top = (1u32 << bits) - 1;
    let mut acc = 0.0;
    for d in 0..D {
        if cell[d] == 0 || cell[d] == top {
            return f64::INFINITY;
        }
        let lo = (cell[d] as i64 - bias) as f64 * width;
        let hi = lo + width;
        let c = center[d];
        let delta = (c - lo).abs().max((c - hi).abs());
        acc += delta * delta;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn curve_of(n: usize) -> CurveIndex<2> {
        // n x n unit-spaced points, cell width 1.5.
        let mut g = CurveIndex::with_cell(1.5);
        let mut id = 0u64;
        for x in 0..n {
            for y in 0..n {
                g.insert(PointId(id), Point::new([x as f64, y as f64]));
                id += 1;
            }
        }
        g
    }

    /// Brute-force oracle for ball answers.
    fn oracle(g: &CurveIndex<2>, center: Point<2>, eps: f64) -> Vec<PointId> {
        let mut out = Vec::new();
        g.for_each(|id, p| {
            if center.within(p, eps) {
                out.push(id);
            }
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn ball_answers_match_brute_force() {
        let mut g = curve_of(12);
        for (cx, cy, eps) in [
            (5.5, 5.5, 1.5),
            (0.0, 0.0, 2.0),
            (11.0, 11.0, 1.0),
            (-3.0, 4.0, 5.0),
            (6.0, 6.0, 0.0),
            (3.3, 8.7, 4.25),
        ] {
            let c = Point::new([cx, cy]);
            let want = oracle(&g, c, eps);
            let mut got = Vec::new();
            g.ball_ids_into(&c, eps, &mut got);
            got.sort_unstable();
            assert_eq!(got, want, "center {c:?} eps {eps}");
            assert_eq!(g.ball_count(&c, eps), want.len());
        }
    }

    #[test]
    fn ball_answers_are_exact_for_negative_coordinates() {
        let mut g = CurveIndex::<2>::with_cell(1.0);
        for (i, xy) in [(-2.5, -2.5), (-0.5, -0.5), (0.5, 0.5), (-1.0, 0.0)]
            .iter()
            .enumerate()
        {
            g.insert(PointId(i as u64), Point::new([xy.0, xy.1]));
        }
        let c = Point::new([-0.75, -0.25]);
        let want = oracle(&g, c, 1.1);
        let mut got = Vec::new();
        g.ball_ids_into(&c, 1.1, &mut got);
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn insert_remove_roundtrip_keeps_invariants() {
        let mut g = curve_of(6);
        assert_eq!(g.len(), 36);
        g.check_invariants();
        for id in 0..18u64 {
            let p = Point::new([(id / 6) as f64, (id % 6) as f64]);
            assert!(g.remove(PointId(id), p));
        }
        assert_eq!(g.len(), 18);
        g.check_invariants();
        assert!(!g.remove(PointId(0), Point::new([0.0, 0.0])));
        assert!(!g.remove(PointId(999), Point::new([50.0, 50.0])));
    }

    #[test]
    fn bulk_insert_merges_into_curve_order() {
        let mut g = CurveIndex::<2>::with_cell(1.0);
        // Pre-populate incrementally, then merge a shuffled batch on top.
        for i in 0..8u64 {
            g.insert(PointId(i * 2), Point::new([i as f64, i as f64]));
        }
        let batch: Vec<(PointId, Point<2>)> = (0..8u64)
            .rev()
            .map(|i| (PointId(i * 2 + 1), Point::new([i as f64 + 0.5, i as f64])))
            .collect();
        g.bulk_insert(batch);
        assert_eq!(g.len(), 16);
        g.check_invariants();
        assert_eq!(g.stats().bulk_insert_batches, 1);
        assert_eq!(g.stats().inserts, 16);
    }

    #[test]
    fn bulk_paths_count_batches() {
        let mut g = CurveIndex::<2>::with_cell(1.0);
        let items: Vec<(PointId, Point<2>)> = (0..10u64)
            .map(|i| (PointId(i), Point::new([i as f64, 0.0])))
            .collect();
        g.bulk_insert(items.clone());
        assert_eq!(g.stats().bulk_insert_batches, 1);
        assert_eq!(g.stats().inserts, 10);
        assert_eq!(g.bulk_remove(&items), 10);
        assert_eq!(g.stats().bulk_remove_batches, 1);
        assert!(g.is_empty());
        assert_eq!(g.occupied_cells(), 0);
    }

    #[test]
    fn multi_center_traversal_matches_per_center_queries() {
        let mut g = curve_of(10);
        let centers = [
            Point::new([2.0, 2.0]),
            Point::new([7.5, 7.5]),
            Point::new([2.0, 2.0]), // duplicate center: reported twice
        ];
        let mut got: Vec<Vec<PointId>> = vec![Vec::new(); centers.len()];
        g.for_each_in_balls(&centers, 1.6, |ci, id, _| got[ci].push(id));
        for (ci, c) in centers.iter().enumerate() {
            let mut want = Vec::new();
            g.ball_ids_into(c, 1.6, &mut want);
            want.sort_unstable();
            got[ci].sort_unstable();
            assert_eq!(got[ci], want, "center {ci}");
        }
        assert_eq!(g.stats().multi_ball_queries, 1);
        assert_eq!(g.stats().multi_ball_centers, 3);
    }

    #[test]
    fn probe_returns_each_vertex_once_per_instance() {
        let mut g = curve_of(8);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        let c = Point::new([3.5, 3.5]);
        g.epoch_probe(probe, &c, 2.0, 0, &mut resolve, &mut all, &mut out);
        let first = out.fresh.len();
        assert!(first > 0);
        assert!(out.foreign.is_empty());
        out.clear();
        g.epoch_probe(probe, &c, 2.0, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), 0, "second probe must see nothing fresh");
        assert!(out.foreign.is_empty(), "same thread never reports foreign");
    }

    #[test]
    fn new_instance_sees_everything_again() {
        let mut g = curve_of(6);
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        let c = Point::new([2.0, 2.0]);
        let p1 = g.begin_epoch();
        g.epoch_probe(p1, &c, 1.5, 0, &mut resolve, &mut all, &mut out);
        let n1 = out.fresh.len();
        out.clear();
        let p2 = g.begin_epoch();
        g.epoch_probe(p2, &c, 1.5, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), n1);
    }

    #[test]
    fn foreign_thread_is_reported_not_hidden() {
        let mut g = curve_of(8);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        g.epoch_probe(
            probe,
            &Point::new([2.0, 2.0]),
            1.5,
            0,
            &mut resolve,
            &mut all,
            &mut out,
        );
        let visited_by_0: Vec<PointId> = out.fresh.iter().map(|(id, _)| *id).collect();
        out.clear();
        g.epoch_probe(
            probe,
            &Point::new([3.0, 2.0]),
            1.5,
            1,
            &mut resolve,
            &mut all,
            &mut out,
        );
        assert!(
            !out.foreign.is_empty(),
            "overlap with thread 0 must surface as foreign hits"
        );
        for (id, owner) in &out.foreign {
            assert_eq!(*owner, 0);
            assert!(visited_by_0.contains(id));
        }
        for (id, _) in &out.fresh {
            assert!(!visited_by_0.contains(id));
        }
    }

    #[test]
    fn merged_threads_prune_each_others_runs() {
        let mut g = curve_of(8);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut all = |_: PointId| true;
        {
            let mut resolve = |o: u32| o;
            g.epoch_probe(
                probe,
                &Point::new([2.0, 2.0]),
                2.0,
                0,
                &mut resolve,
                &mut all,
                &mut out,
            );
        }
        out.clear();
        {
            // After a merge both slots resolve to 0: re-probing the same
            // region yields nothing fresh and nothing foreign.
            let mut resolve = |_: u32| 0;
            g.epoch_probe(
                probe,
                &Point::new([2.0, 2.0]),
                2.0,
                0,
                &mut resolve,
                &mut all,
                &mut out,
            );
        }
        assert!(out.fresh.is_empty());
        assert!(out.foreign.is_empty());
    }

    #[test]
    fn non_vertices_are_invisible_to_probes() {
        let mut g = curve_of(4);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut even = |id: PointId| id.raw().is_multiple_of(2);
        g.epoch_probe(
            probe,
            &Point::new([1.5, 1.5]),
            5.0,
            0,
            &mut resolve,
            &mut even,
            &mut out,
        );
        assert!(out.fresh.iter().all(|(id, _)| id.raw() % 2 == 0));
        assert_eq!(out.fresh.len(), 8, "16 grid points, half are vertices");
        out.clear();
        let mut all = |_: PointId| true;
        g.epoch_probe(
            probe,
            &Point::new([1.5, 1.5]),
            5.0,
            0,
            &mut resolve,
            &mut all,
            &mut out,
        );
        assert_eq!(out.fresh.len(), 8, "the odd half is still fresh");
    }

    #[test]
    fn pruning_happens_for_repeat_probes() {
        let mut g = curve_of(16);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        // A ball covering the whole extent guarantees every run is fully
        // visited and therefore stamped for pruning.
        let c = Point::new([8.0, 8.0]);
        g.epoch_probe(probe, &c, 25.0, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), 256);
        let before = g.stats().subtrees_pruned;
        out.clear();
        g.epoch_probe(probe, &c, 25.0, 0, &mut resolve, &mut all, &mut out);
        let after = g.stats().subtrees_pruned;
        assert!(
            after > before,
            "a repeat probe over a fully-visited region must prune runs"
        );
    }

    #[test]
    fn insert_into_stamped_run_unstamps_it() {
        let mut g = curve_of(4);
        let probe = g.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        let c = Point::new([2.0, 2.0]);
        // Cover everything so runs get stamped.
        g.epoch_probe(probe, &c, 10.0, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), 16);
        // A new arrival lands in a stamped run; the same instance must
        // still discover it.
        g.insert(PointId(99), Point::new([2.1, 2.1]));
        out.clear();
        g.epoch_probe(probe, &c, 10.0, 0, &mut resolve, &mut all, &mut out);
        assert_eq!(out.fresh.len(), 1);
        assert_eq!(out.fresh[0].0, PointId(99));
    }

    #[test]
    fn mark_visited_seeds_starters() {
        let mut g = curve_of(4);
        let probe = g.begin_epoch();
        let p = Point::new([1.0, 1.0]);
        assert!(g.mark_visited(probe, &p, PointId(5), 3));
        assert!(!g.mark_visited(probe, &p, PointId(77), 3), "unknown id");
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        g.epoch_probe(probe, &p, 1.0, 0, &mut resolve, &mut all, &mut out);
        // The marked starter shows up as a foreign hit of thread 3.
        assert!(out.foreign.contains(&(PointId(5), 3)));
        assert!(out.fresh.iter().all(|(id, _)| *id != PointId(5)));
    }

    /// The teardown fast path (contiguous ids) must behave exactly like
    /// the general path even when an item carries stale coordinates: the
    /// stored key no longer matches, so the row stays — the same outcome
    /// the per-item `(key, id)` search produces.
    #[test]
    fn teardown_fast_path_skips_stale_points_like_the_general_path() {
        let pts: Vec<(PointId, Point<2>)> = (0..50)
            .map(|i| (PointId(i), Point::new([i as f64 * 0.7, 1.0])))
            .collect();
        let mut bulk = CurveIndex::<2>::with_cell(1.0);
        let mut one_by_one = CurveIndex::<2>::with_cell(1.0);
        bulk.bulk_insert(pts.clone());
        one_by_one.bulk_insert(pts.clone());

        // Oldest stride, but item 3's coordinates moved to another cell.
        let mut batch: Vec<(PointId, Point<2>)> = pts[..10].to_vec();
        batch[3].1 = Point::new([500.0, 500.0]);
        assert_eq!(bulk.bulk_remove(&batch), 9, "stale item must be skipped");
        for (id, p) in &batch {
            let found = one_by_one.remove(*id, *p);
            assert_eq!(found, id.raw() != 3);
        }
        assert_eq!(bulk.len(), one_by_one.len());
        let mut a = Vec::new();
        let mut b = Vec::new();
        bulk.for_each(|id, p| a.push((id, *p)));
        one_by_one.for_each(|id, p| b.push((id, *p)));
        assert_eq!(a, b);
        bulk.check_invariants();
        one_by_one.check_invariants();
    }

    #[test]
    fn arrival_ticks_are_monotone_in_insertion_order() {
        let mut g = CurveIndex::<2>::with_cell(1.0);
        g.insert(PointId(10), Point::new([5.0, 5.0]));
        g.insert(PointId(3), Point::new([-5.0, 2.0]));
        g.bulk_insert(vec![
            (PointId(20), Point::new([1.0, 1.0])),
            (PointId(21), Point::new([2.0, 2.0])),
        ]);
        // Ticks 0..4 were handed out; every row carries one of them, all
        // distinct.
        let mut ticks: Vec<u64> = (0..g.len()).map(|r| g.rows.tick_at(r)).collect();
        ticks.sort_unstable();
        assert_eq!(ticks, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_width_is_rejected() {
        let _ = CurveIndex::<2>::with_cell(0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Teardown bulk eviction is equivalent to removing the same batch
        /// per point: identical survivors, identical structure.
        #[test]
        fn bulk_eviction_equals_per_point_removal(
            xs in prop::collection::vec(-8.0..8.0f64, 20..120),
            evict_frac in 1usize..4,
        ) {
            let pts: Vec<(PointId, Point<2>)> = xs
                .chunks_exact(2)
                .enumerate()
                .map(|(i, c)| (PointId(i as u64), Point::new([c[0], c[1]])))
                .collect();
            let mut bulk = CurveIndex::<2>::with_cell(1.0);
            let mut one_by_one = CurveIndex::<2>::with_cell(1.0);
            bulk.bulk_insert(pts.clone());
            one_by_one.bulk_insert(pts.clone());
            // Evict the oldest stride, the way the window driver does.
            let k = pts.len() / (evict_frac + 1) + 1;
            let batch: Vec<(PointId, Point<2>)> = pts[..k].to_vec();
            prop_assert_eq!(bulk.bulk_remove(&batch), k);
            for (id, p) in &batch {
                prop_assert!(one_by_one.remove(*id, *p));
            }
            bulk.check_invariants();
            one_by_one.check_invariants();
            prop_assert_eq!(bulk.len(), one_by_one.len());
            let mut a = Vec::new();
            let mut b = Vec::new();
            bulk.for_each(|id, p| a.push((id, *p)));
            one_by_one.for_each(|id, p| b.push((id, *p)));
            prop_assert_eq!(a, b);
            // And the survivors still answer queries exactly.
            let c = Point::new([0.0, 0.0]);
            let mut ia = Vec::new();
            let mut ib = Vec::new();
            bulk.ball_ids_into(&c, 2.5, &mut ia);
            one_by_one.ball_ids_into(&c, 2.5, &mut ib);
            ia.sort_unstable();
            ib.sort_unstable();
            prop_assert_eq!(ia, ib);
        }

        /// Curve ball answers agree with the grid's on random data — the
        /// two cell-based backends share their cell geometry exactly.
        #[test]
        fn curve_answers_match_grid_answers(
            xs in prop::collection::vec(-10.0..10.0f64, 30..160),
            eps in 0.3..3.0f64,
        ) {
            let pts: Vec<(PointId, Point<2>)> = xs
                .chunks_exact(2)
                .enumerate()
                .map(|(i, c)| (PointId(i as u64), Point::new([c[0], c[1]])))
                .collect();
            let mut curve = CurveIndex::<2>::with_cell(eps);
            let mut grid = crate::GridIndex::<2>::with_cell(eps);
            curve.bulk_insert(pts.clone());
            grid.bulk_insert(pts.clone());
            for (_, c) in pts.iter().step_by(7) {
                let mut ia = Vec::new();
                let mut ib = Vec::new();
                curve.ball_ids_into(c, eps, &mut ia);
                grid.ball_ids_into(c, eps, &mut ib);
                ia.sort_unstable();
                ib.sort_unstable();
                prop_assert_eq!(ia, ib);
            }
        }
    }
}
