//! The pluggable spatial-backend contract.
//!
//! DISC's COLLECT/CLUSTER/MS-BFS machinery (Algs. 1–4) never depends on the
//! *structure* of the neighbourhood index — only on exact ε-range answers,
//! batched mutation, and epoch-stamped "visited" probing. [`SpatialBackend`]
//! captures exactly that contract so the engine can be instantiated over any
//! index: the paper's R-tree ([`RTree`]), the uniform grid
//! ([`GridIndex`](crate::GridIndex)), or future backends.
//!
//! ## Contract
//!
//! * **Exactness** — every ball query reports *exactly* the stored points
//!   within Euclidean distance `eps` of the center (inclusive, matching
//!   `N_ε`). No backend may approximate.
//! * **Accounting** — every query entry point updates the shared [`Stats`]
//!   counters. `nodes_visited` counts whatever the backend's traversal unit
//!   is (tree nodes, grid cells); `distance_checks` counts point-to-point
//!   distance evaluations. The Fig. 7 comparisons read these.
//! * **Epoch marks** — visited marks live *inside* the index as
//!   `(tick, owner)` pairs (the owner-aware deviation from the paper's
//!   Alg. 4, see [`crate::epoch`]). [`begin_epoch`] starts an MS-BFS
//!   instance; [`epoch_probe`] reports unvisited in-range vertices as
//!   `fresh` (marking them), already-visited vertices of *another* thread
//!   as `foreign`, and prunes whole regions uniformly owned by the probing
//!   thread. Owners are resolved through the caller-provided union-find so
//!   merged threads count as one.
//! * **`eps_hint`** — the ε every ball query of the owning engine will use.
//!   Cell-based backends size their partition from it; others ignore it.
//!   Queries with a *different* eps remain legal and exact everywhere.
//!
//! [`begin_epoch`]: SpatialBackend::begin_epoch
//! [`epoch_probe`]: SpatialBackend::epoch_probe

use crate::epoch::{EpochProbe, ProbeOutcome};
use crate::stats::Stats;
use crate::tree::RTree;
use disc_geom::{Point, PointId};

/// An exact ε-range index over `D`-dimensional points, with the batched
/// mutation and epoch-probe entry points DISC needs.
///
/// Closure-taking methods are generic (not `dyn`) so call sites written
/// against the concrete [`RTree`] keep compiling unchanged; the trait is
/// consequently not object-safe — backends are selected by type parameter,
/// which is also what lets the compiler specialise the hot paths.
///
/// `Send + Sync` is part of the contract: the parallel slide engine shares a
/// frozen `&B` snapshot across workers during its read-only scan phases
/// ([`scan_ball`](Self::scan_ball) / [`scan_balls`](Self::scan_balls)). Both
/// shipped backends are plain owned data, so the bounds are free.
///
/// [`MemoryFootprint`](disc_telemetry::MemoryFootprint) is likewise part of
/// the contract: the engine publishes per-component byte gauges every slide,
/// and the paper's headline claim is a *memory* comparison — a backend that
/// cannot account for its own bytes cannot participate in the ablation.
pub trait SpatialBackend<const D: usize>: Send + Sync + disc_telemetry::MemoryFootprint {
    /// Short name for reports and ablation tables (e.g. `"rtree"`).
    const NAME: &'static str;

    /// Creates an empty index. `eps_hint` is the ε the owning engine will
    /// query with (see the module docs); it must be positive and finite.
    fn with_eps_hint(eps_hint: f64) -> Self;

    /// Builds an index over `items` in one shot (rebuild-per-slide
    /// baselines). Counts `items.len()` inserts.
    fn from_batch(eps_hint: f64, items: Vec<(PointId, Point<D>)>) -> Self
    where
        Self: Sized,
    {
        let mut index = Self::with_eps_hint(eps_hint);
        index.bulk_insert(items);
        index
    }

    /// Number of stored points.
    fn len(&self) -> usize;

    /// Whether the index holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read access to the operation counters.
    fn stats(&self) -> &Stats;

    /// Resets the operation counters.
    fn reset_stats(&mut self);

    /// Mutable access to the operation counters, so per-worker [`Stats`]
    /// deltas from the `scan_*` methods can be merged back (in task order —
    /// see [`Stats::merge`]) after a parallel phase.
    fn stats_mut(&mut self) -> &mut Stats;

    /// Inserts a point. Duplicate `(id, point)` pairs are the caller's
    /// responsibility.
    fn insert(&mut self, id: PointId, point: Point<D>);

    /// Removes the entry for `id` at `point`; returns whether it was found.
    fn remove(&mut self, id: PointId, point: Point<D>) -> bool;

    /// Inserts a batch, amortising traversal work where the backend can.
    fn bulk_insert(&mut self, items: Vec<(PointId, Point<D>)>);

    /// Removes a batch; returns how many entries were found and removed.
    fn bulk_remove(&mut self, items: &[(PointId, Point<D>)]) -> usize;

    /// Calls `f(id, point)` for every stored point within `eps` of
    /// `center` (inclusive), in unspecified order.
    fn for_each_in_ball<F: FnMut(PointId, &Point<D>)>(&mut self, center: &Point<D>, eps: f64, f: F);

    /// Read-only flavour of [`for_each_in_ball`](Self::for_each_in_ball):
    /// identical answers and traversal order, but counters accumulate into
    /// the caller-supplied `stats` instead of the index's own. This is the
    /// parallel-engine entry point — many workers may scan one shared `&self`
    /// concurrently, each with a private `Stats`, merged afterwards.
    fn scan_ball<F: FnMut(PointId, &Point<D>)>(
        &self,
        center: &Point<D>,
        eps: f64,
        f: F,
        stats: &mut Stats,
    );

    /// Clears `out` and fills it with the ids within `eps` of `center`.
    fn ball_ids_into(&mut self, center: &Point<D>, eps: f64, out: &mut Vec<PointId>) {
        out.clear();
        self.for_each_in_ball(center, eps, |id, _| out.push(id));
    }

    /// Counts the points within `eps` of `center`.
    fn ball_count(&mut self, center: &Point<D>, eps: f64) -> usize {
        let mut n = 0usize;
        self.for_each_in_ball(center, eps, |_, _| n += 1);
        n
    }

    /// Multi-center ε-ball traversal: calls `f(ci, id, point)` for every
    /// `(center index, stored point)` pair with `point` within `eps` of
    /// `centers[ci]`. A point in range of several centers is reported once
    /// per center. Backends overlap the per-center work where they can.
    fn for_each_in_balls<F: FnMut(usize, PointId, &Point<D>)>(
        &mut self,
        centers: &[Point<D>],
        eps: f64,
        f: F,
    );

    /// Read-only flavour of [`for_each_in_balls`](Self::for_each_in_balls)
    /// with caller-supplied counters; same sharing contract as
    /// [`scan_ball`](Self::scan_ball).
    fn scan_balls<F: FnMut(usize, PointId, &Point<D>)>(
        &self,
        centers: &[Point<D>],
        eps: f64,
        f: F,
        stats: &mut Stats,
    );

    /// Iterates over every stored `(id, point)` pair (diagnostics/tests).
    fn for_each<F: FnMut(PointId, &Point<D>)>(&self, f: F);

    /// Starts a new MS-BFS instance: allocates a fresh tick, implicitly
    /// staling every mark of earlier instances.
    fn begin_epoch(&mut self) -> EpochProbe;

    /// Marks the entry for `id` (stored at `center`) as visited by `owner`
    /// for this instance; returns whether the entry was found.
    fn mark_visited(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        id: PointId,
        owner: u32,
    ) -> bool;

    /// One epoch-based ε-range search on behalf of MS-BFS thread `thread`
    /// (its *current union-find root*). See the module docs for the
    /// fresh/foreign/prune semantics shared by all backends.
    #[allow(clippy::too_many_arguments)]
    fn epoch_probe(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        eps: f64,
        thread: u32,
        resolve: &mut dyn FnMut(u32) -> u32,
        is_vertex: &mut dyn FnMut(PointId) -> bool,
        out: &mut ProbeOutcome<D>,
    );

    /// Validates internal invariants exhaustively (test helper).
    fn check_invariants(&self);
}

impl<const D: usize> SpatialBackend<D> for RTree<D> {
    const NAME: &'static str = "rtree";

    fn with_eps_hint(_eps_hint: f64) -> Self {
        RTree::new()
    }

    fn from_batch(_eps_hint: f64, items: Vec<(PointId, Point<D>)>) -> Self {
        RTree::bulk_load(items)
    }

    fn len(&self) -> usize {
        RTree::len(self)
    }

    fn stats(&self) -> &Stats {
        RTree::stats(self)
    }

    fn reset_stats(&mut self) {
        RTree::reset_stats(self)
    }

    fn stats_mut(&mut self) -> &mut Stats {
        RTree::stats_mut(self)
    }

    fn insert(&mut self, id: PointId, point: Point<D>) {
        RTree::insert(self, id, point)
    }

    fn remove(&mut self, id: PointId, point: Point<D>) -> bool {
        RTree::remove(self, id, point)
    }

    fn bulk_insert(&mut self, items: Vec<(PointId, Point<D>)>) {
        RTree::bulk_insert(self, items)
    }

    fn bulk_remove(&mut self, items: &[(PointId, Point<D>)]) -> usize {
        RTree::bulk_remove(self, items)
    }

    fn for_each_in_ball<F: FnMut(PointId, &Point<D>)>(
        &mut self,
        center: &Point<D>,
        eps: f64,
        f: F,
    ) {
        RTree::for_each_in_ball(self, center, eps, f)
    }

    fn scan_ball<F: FnMut(PointId, &Point<D>)>(
        &self,
        center: &Point<D>,
        eps: f64,
        f: F,
        stats: &mut Stats,
    ) {
        RTree::scan_ball(self, center, eps, f, stats)
    }

    fn ball_ids_into(&mut self, center: &Point<D>, eps: f64, out: &mut Vec<PointId>) {
        RTree::ball_ids_into(self, center, eps, out)
    }

    fn ball_count(&mut self, center: &Point<D>, eps: f64) -> usize {
        RTree::ball_count(self, center, eps)
    }

    fn for_each_in_balls<F: FnMut(usize, PointId, &Point<D>)>(
        &mut self,
        centers: &[Point<D>],
        eps: f64,
        f: F,
    ) {
        RTree::for_each_in_balls(self, centers, eps, f)
    }

    fn scan_balls<F: FnMut(usize, PointId, &Point<D>)>(
        &self,
        centers: &[Point<D>],
        eps: f64,
        f: F,
        stats: &mut Stats,
    ) {
        RTree::scan_balls(self, centers, eps, f, stats)
    }

    fn for_each<F: FnMut(PointId, &Point<D>)>(&self, f: F) {
        RTree::for_each(self, f)
    }

    fn begin_epoch(&mut self) -> EpochProbe {
        RTree::begin_epoch(self)
    }

    fn mark_visited(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        id: PointId,
        owner: u32,
    ) -> bool {
        RTree::mark_visited(self, probe, center, id, owner)
    }

    fn epoch_probe(
        &mut self,
        probe: EpochProbe,
        center: &Point<D>,
        eps: f64,
        thread: u32,
        resolve: &mut dyn FnMut(u32) -> u32,
        is_vertex: &mut dyn FnMut(PointId) -> bool,
        out: &mut ProbeOutcome<D>,
    ) {
        RTree::epoch_probe(self, probe, center, eps, thread, resolve, is_vertex, out)
    }

    fn check_invariants(&self) {
        RTree::check_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a backend through the whole contract generically; both
    /// implementors go through the same motions.
    fn exercise<B: SpatialBackend<2>>() {
        let mut ix = B::with_eps_hint(1.0);
        assert!(ix.is_empty());
        for i in 0..20u64 {
            ix.insert(PointId(i), Point::new([i as f64 * 0.5, 0.0]));
        }
        assert_eq!(ix.len(), 20);
        assert!(!ix.is_empty());

        // Exact inclusive ball answers.
        let mut ids = Vec::new();
        ix.ball_ids_into(&Point::new([2.0, 0.0]), 1.0, &mut ids);
        ids.sort_unstable();
        assert_eq!(
            ids,
            vec![PointId(2), PointId(3), PointId(4), PointId(5), PointId(6)]
        );
        assert_eq!(ix.ball_count(&Point::new([2.0, 0.0]), 1.0), 5);

        // The read-only scan flavour answers identically on `&self`, and its
        // caller-side counter delta merges back into the index's totals.
        let before = *ix.stats();
        let mut delta = Stats::default();
        let mut scan_ids = Vec::new();
        ix.scan_ball(
            &Point::new([2.0, 0.0]),
            1.0,
            |id, _| scan_ids.push(id),
            &mut delta,
        );
        scan_ids.sort_unstable();
        assert_eq!(scan_ids, ids);
        assert_eq!(delta.range_searches, 1);
        ix.stats_mut().merge(&delta);
        assert_eq!(ix.stats().range_searches, before.range_searches + 1);

        // Multi-center traversal covers each center exactly.
        let centers = [Point::new([0.0, 0.0]), Point::new([9.5, 0.0])];
        let mut per_center = [0usize; 2];
        ix.for_each_in_balls(&centers, 1.0, |ci, _, _| per_center[ci] += 1);
        assert_eq!(per_center, [3, 3]);

        // Same for the multi-center scan: identical per-center coverage.
        let mut scan_per_center = [0usize; 2];
        let mut delta = Stats::default();
        ix.scan_balls(
            &centers,
            1.0,
            |ci, _, _| scan_per_center[ci] += 1,
            &mut delta,
        );
        assert_eq!(scan_per_center, per_center);
        assert_eq!(delta.multi_ball_queries, 1);
        ix.stats_mut().merge(&delta);

        // Epoch probe: everything fresh once, nothing twice.
        let probe = ix.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        ix.epoch_probe(
            probe,
            &Point::new([2.0, 0.0]),
            1.0,
            0,
            &mut resolve,
            &mut all,
            &mut out,
        );
        assert_eq!(out.fresh.len(), 5);
        out.clear();
        ix.epoch_probe(
            probe,
            &Point::new([2.0, 0.0]),
            1.0,
            0,
            &mut resolve,
            &mut all,
            &mut out,
        );
        assert!(out.fresh.is_empty() && out.foreign.is_empty());

        // Mutation keeps answers exact.
        assert!(ix.remove(PointId(4), Point::new([2.0, 0.0])));
        assert!(!ix.remove(PointId(4), Point::new([2.0, 0.0])));
        assert_eq!(ix.ball_count(&Point::new([2.0, 0.0]), 1.0), 4);
        ix.bulk_insert(vec![(PointId(100), Point::new([2.0, 0.1]))]);
        assert_eq!(ix.bulk_remove(&[(PointId(100), Point::new([2.0, 0.1]))]), 1);
        assert_eq!(ix.len(), 19);

        let mut seen = 0usize;
        ix.for_each(|_, _| seen += 1);
        assert_eq!(seen, 19);
        ix.check_invariants();

        // Every backend accounts for its bytes: a populated index reports a
        // nonzero footprint whose root total equals the sum over the tree,
        // and flatten() exposes at least one child component.
        let fp = ix.footprint();
        assert!(fp.total() > 0, "populated {} reports zero bytes", B::NAME);
        assert_eq!(fp.total(), ix.mem_bytes());
        let flat = fp.flatten();
        assert!(flat.len() > 1, "{} footprint has no components", B::NAME);
        assert_eq!(flat[0].1, fp.total());
        assert!(ix.stats().range_searches > 0);
        ix.reset_stats();
        assert_eq!(ix.stats().range_searches, 0);
    }

    #[test]
    fn rtree_satisfies_the_contract() {
        exercise::<RTree<2>>();
    }

    #[test]
    fn grid_satisfies_the_contract() {
        exercise::<crate::GridIndex<2>>();
    }

    #[test]
    fn curve_satisfies_the_contract() {
        exercise::<crate::CurveIndex<2>>();
    }

    /// Runs one identical instrumented workload — bulk load, plain and
    /// multi-center queries, epoch probes over a fully-visited region (so
    /// pruning fires), point mutation, bulk removal — and returns the
    /// accumulated counters.
    fn counter_workload<B: SpatialBackend<2>>() -> Stats {
        let mut ix = B::with_eps_hint(1.0);
        let items: Vec<(PointId, Point<2>)> = (0..64u64)
            .map(|i| {
                (
                    PointId(i),
                    Point::new([(i % 8) as f64 * 0.4, (i / 8) as f64 * 0.4]),
                )
            })
            .collect();
        ix.bulk_insert(items.clone());
        ix.ball_count(&Point::new([1.4, 1.4]), 1.0);
        ix.for_each_in_balls(
            &[Point::new([0.0, 0.0]), Point::new([2.8, 2.8])],
            1.0,
            |_, _, _| {},
        );
        // Two probes over a ball covering the whole extent: the first marks
        // every entry for thread 0, the second must prune the now uniformly
        // owned regions (subtrees / cells).
        let probe = ix.begin_epoch();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;
        for _ in 0..2 {
            ix.epoch_probe(
                probe,
                &Point::new([1.4, 1.4]),
                5.0,
                0,
                &mut resolve,
                &mut all,
                &mut out,
            );
            out.clear();
        }
        ix.insert(PointId(999), Point::new([5.0, 5.0]));
        ix.remove(PointId(999), Point::new([5.0, 5.0]));
        assert_eq!(ix.bulk_remove(&items), items.len());
        *ix.stats()
    }

    #[test]
    fn backends_populate_the_same_counters() {
        // Counter symmetry: after the same workload, every Stats field a
        // backend can meaningfully report is nonzero for ALL backends —
        // an ablation never compares a populated counter against an
        // unpopulated zero.
        let r = counter_workload::<RTree<2>>();
        let g = counter_workload::<crate::GridIndex<2>>();
        let c = counter_workload::<crate::CurveIndex<2>>();
        for (backend, s) in [("rtree", &r), ("grid", &g), ("curve", &c)] {
            for (name, v) in [
                ("range_searches", s.range_searches),
                ("epoch_probes", s.epoch_probes),
                ("nodes_visited", s.nodes_visited),
                ("distance_checks", s.distance_checks),
                ("subtrees_pruned", s.subtrees_pruned),
                ("inserts", s.inserts),
                ("removes", s.removes),
                ("bulk_insert_batches", s.bulk_insert_batches),
                ("bulk_remove_batches", s.bulk_remove_batches),
                ("multi_ball_queries", s.multi_ball_queries),
                ("multi_ball_centers", s.multi_ball_centers),
                ("bulk_nodes_visited", s.bulk_nodes_visited),
                ("bulk_leaf_scans", s.bulk_leaf_scans),
            ] {
                assert!(v > 0, "{backend} left {name} unpopulated");
            }
        }
        // Exact-count symmetry where the unit is backend-independent.
        for s in [&g, &c] {
            assert_eq!(r.range_searches, s.range_searches);
            assert_eq!(r.epoch_probes, s.epoch_probes);
            assert_eq!(r.inserts, s.inserts);
            assert_eq!(r.removes, s.removes);
            assert_eq!(r.multi_ball_queries, s.multi_ball_queries);
            assert_eq!(r.multi_ball_centers, s.multi_ball_centers);
        }
    }

    #[test]
    fn from_batch_matches_incremental_build() {
        let items: Vec<(PointId, Point<2>)> = (0..50u64)
            .map(|i| (PointId(i), Point::new([(i % 7) as f64, (i / 7) as f64])))
            .collect();
        let mut a = RTree::<2>::from_batch(1.0, items.clone());
        let mut b = crate::GridIndex::<2>::from_batch(1.0, items.clone());
        let mut v = crate::CurveIndex::<2>::from_batch(1.0, items);
        let c = Point::new([3.0, 3.0]);
        let mut ia = Vec::new();
        let mut ib = Vec::new();
        let mut iv = Vec::new();
        a.ball_ids_into(&c, 2.0, &mut ia);
        b.ball_ids_into(&c, 2.0, &mut ib);
        v.ball_ids_into(&c, 2.0, &mut iv);
        ia.sort_unstable();
        ib.sort_unstable();
        iv.sort_unstable();
        assert_eq!(ia, ib);
        assert_eq!(ia, iv);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), v.len());
    }
}
