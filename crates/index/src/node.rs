//! Arena-allocated R-tree nodes.

use disc_geom::{Aabb, Point, PointId};

/// Index of a node in the tree's arena.
pub(crate) type NodeIdx = u32;

/// Sentinel for "no node".
pub(crate) const NO_NODE: NodeIdx = u32::MAX;

/// Epoch mark carried by every entry (leaf and internal).
///
/// `tick` identifies the MS-BFS instance that last visited the entry; a tick
/// older than the current instance means "unvisited". `owner` is the MS-BFS
/// thread slot that claimed the entry (resolved through the caller's
/// union-find at probe time, see [`crate::epoch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Epoch {
    pub tick: u64,
    pub owner: u32,
}

impl Epoch {
    pub(crate) const CLEAR: Epoch = Epoch { tick: 0, owner: 0 };
}

/// An entry of an internal node: a child subtree and its bounding box.
#[derive(Clone, Debug)]
pub(crate) struct Branch<const D: usize> {
    pub mbr: Aabb<D>,
    pub child: NodeIdx,
    pub epoch: Epoch,
}

/// An entry of a leaf node: one indexed point.
#[derive(Clone, Debug)]
pub(crate) struct LeafEntry<const D: usize> {
    pub point: Point<D>,
    pub id: PointId,
    pub epoch: Epoch,
}

/// Node payload.
#[derive(Clone, Debug)]
pub(crate) enum NodeKind<const D: usize> {
    Leaf(Vec<LeafEntry<D>>),
    Internal(Vec<Branch<D>>),
}

#[derive(Clone, Debug)]
pub(crate) struct Node<const D: usize> {
    pub kind: NodeKind<D>,
}

impl<const D: usize> Node<D> {
    pub(crate) fn new_leaf() -> Self {
        Node {
            kind: NodeKind::Leaf(Vec::with_capacity(crate::MAX_ENTRIES + 1)),
        }
    }

    pub(crate) fn new_internal() -> Self {
        Node {
            kind: NodeKind::Internal(Vec::with_capacity(crate::MAX_ENTRIES + 1)),
        }
    }

    pub(crate) fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    pub(crate) fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(v) => v.len(),
            NodeKind::Internal(v) => v.len(),
        }
    }

    /// Recomputes the bounding box of everything stored below this node.
    pub(crate) fn mbr(&self) -> Aabb<D> {
        let mut out = Aabb::empty();
        match &self.kind {
            NodeKind::Leaf(v) => {
                for e in v {
                    out.extend_point(&e.point);
                }
            }
            NodeKind::Internal(v) => {
                for b in v {
                    out.extend(&b.mbr);
                }
            }
        }
        out
    }
}
