//! Neighborhood indexes purpose-built for DISC (ICDE 2021).
//!
//! The paper implements its own in-memory R-tree because two of its key
//! techniques need index internals:
//!
//! * **range-search accounting** — the evaluation (Fig. 7) counts the number
//!   of ε-range searches each clustering method executes, so every query
//!   entry point updates [`Stats`];
//! * **epoch-based probing** (Alg. 4) — "visited" marks for the MS-BFS
//!   connectivity check are stored *inside* index entries as monotonically
//!   increasing epochs, letting a probe skip whole subtrees that the current
//!   MS-BFS instance has already explored, with no per-instance reset cost.
//!
//! Nothing in DISC's correctness argument depends on the index *structure*,
//! though — only on exact ε-range answers plus the visited-mark probing
//! contract. That contract is captured by the [`SpatialBackend`] trait, with
//! two implementors:
//!
//! * [`RTree`] — a classic quadratic-split R-tree over `D`-dimensional points
//!   with insert, delete (condense + reinsert), STR bulk load, plain ε-range
//!   queries, and the epoch probe. One deliberate deviation from the paper's
//!   Alg. 4 is documented in [`epoch`]: entries store an *(epoch, owner)*
//!   pair instead of a bare epoch so that two MS-BFS threads can still detect
//!   that they met inside an already-visited subtree.
//! * [`GridIndex`] — a uniform grid with ε-aligned cells, 3^D-neighbourhood
//!   range answering, and grid-native epoch marks stored per cell entry.
//! * [`CurveIndex`] — a Morton-curve-sorted flat array over struct-of-arrays
//!   columns: ε-queries decompose into O(log) contiguous key-range scans fed
//!   through batched distance kernels, bulk construction is one backward
//!   merge, and stride eviction is a single teardown compaction pass.

pub mod bulk;
pub mod curve;
pub mod epoch;
pub mod grid;
pub mod knn;
pub mod node;
pub mod stats;
pub mod traits;
pub mod tree;

pub use curve::CurveIndex;
pub use epoch::{EpochProbe, ProbeOutcome};
pub use grid::GridIndex;
pub use stats::Stats;
pub use traits::SpatialBackend;
pub use tree::RTree;

pub(crate) const MAX_ENTRIES: usize = 16;
pub(crate) const MIN_ENTRIES: usize = 6;
