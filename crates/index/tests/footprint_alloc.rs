//! Counting-allocator cross-check for the `MemoryFootprint` estimates.
//!
//! The footprint trait reports *estimated* heap bytes from capacities and
//! layout arithmetic; this harness swaps in a `#[global_allocator]` wrapper
//! (scoped to this test binary only) that tracks live bytes, and asserts the
//! estimate lands within ±15% of the real allocation delta retained by each
//! backend across construction + bulk load, for all three backends over the
//! standard datasets. A model that drifts from the real allocator — say the
//! hash-map bucket arithmetic going stale after a std upgrade — fails here
//! long before it mis-ranks an ablation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};

use disc_geom::{Point, PointId};
use disc_index::{CurveIndex, GridIndex, RTree, SpatialBackend};
use disc_window::datasets;

/// Live heap bytes (allocated minus freed) since process start.
static LIVE: AtomicI64 = AtomicI64::new(0);

struct CountingAlloc;

// SAFETY: defers every operation to `System` verbatim; only the byte
// accounting is added, and only on successful (non-null) returns.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            LIVE.fetch_add(layout.size() as i64, Ordering::SeqCst);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            LIVE.fetch_add(layout.size() as i64, Ordering::SeqCst);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size() as i64, Ordering::SeqCst);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE.fetch_add(new_size as i64 - layout.size() as i64, Ordering::SeqCst);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Loads `items` into a fresh backend while watching the live-byte counter.
///
/// The input clone is allocated *and* freed inside the measurement window,
/// so it cancels out of the delta; everything the backend retains does not.
fn check_backend<B: SpatialBackend<2>>(eps: f64, items: &[(PointId, Point<2>)], dataset: &str) {
    let before = LIVE.load(Ordering::SeqCst);
    let mut ix = B::with_eps_hint(eps);
    ix.bulk_insert(items.to_vec());
    let after = LIVE.load(Ordering::SeqCst);

    let measured = (after - before) as f64;
    assert!(
        measured > 0.0,
        "{}/{dataset}: allocator saw no retained bytes",
        B::NAME
    );
    let estimated = ix.mem_bytes() as f64;
    let ratio = estimated / measured;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "{}/{dataset}: footprint estimate {estimated} vs measured {measured} \
         (ratio {ratio:.3}) is outside the +/-15% band:\n{}",
        B::NAME,
        ix.footprint().render()
    );
    drop(ix);
}

fn as_items<const D: usize>(records: Vec<disc_window::Record<D>>) -> Vec<(PointId, Point<D>)> {
    records
        .into_iter()
        .enumerate()
        .map(|(i, r)| (PointId(i as u64), r.point))
        .collect()
}

/// One test function on purpose: the live-byte counter is process-global, and
/// Rust runs `#[test]` functions in parallel — concurrent measurement windows
/// would see each other's allocations. Sequential sections keep each window
/// clean.
#[test]
fn footprint_estimates_match_real_allocations() {
    let uniform = as_items(datasets::uniform::<2>(4_000, 100.0, 7));
    let blobs = as_items(datasets::gaussian_blobs::<2>(4_000, 8, 0.5, 11));

    for (dataset, items, eps) in [("uniform", &uniform, 2.0), ("blobs", &blobs, 0.8)] {
        check_backend::<RTree<2>>(eps, items, dataset);
        check_backend::<GridIndex<2>>(eps, items, dataset);
        check_backend::<CurveIndex<2>>(eps, items, dataset);
    }
}
