//! Property tests: the R-tree must agree with a linear-scan oracle under
//! arbitrary interleavings of inserts and deletes, and the epoch probe must
//! return exactly the unvisited subset.

use disc_geom::{Point, PointId};
use disc_index::{ProbeOutcome, RTree};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert {
        x: f64,
        y: f64,
    },
    /// Remove the k-th live point (mod live count).
    Remove(usize),
    Query {
        x: f64,
        y: f64,
        eps: f64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (-50.0..50.0f64, -50.0..50.0f64).prop_map(|(x, y)| Op::Insert { x, y }),
        1 => (0usize..1000).prop_map(Op::Remove),
        2 => (-50.0..50.0f64, -50.0..50.0f64, 0.1..20.0f64)
            .prop_map(|(x, y, eps)| Op::Query { x, y, eps }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_matches_linear_scan(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut tree: RTree<2> = RTree::new();
        let mut oracle: Vec<(PointId, Point<2>)> = Vec::new();
        let mut next_id = 0u64;

        for op in ops {
            match op {
                Op::Insert { x, y } => {
                    let id = PointId(next_id);
                    next_id += 1;
                    let p = Point::new([x, y]);
                    tree.insert(id, p);
                    oracle.push((id, p));
                }
                Op::Remove(k) => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let (id, p) = oracle.swap_remove(k % oracle.len());
                    prop_assert!(tree.remove(id, p));
                }
                Op::Query { x, y, eps } => {
                    let q = Point::new([x, y]);
                    let mut got = tree.ball_ids(&q, eps);
                    got.sort();
                    let mut want: Vec<PointId> = oracle
                        .iter()
                        .filter(|(_, p)| q.within(p, eps))
                        .map(|(id, _)| *id)
                        .collect();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), oracle.len());
        }
        tree.check_invariants();
    }

    #[test]
    fn bulk_mutations_match_per_point_mutations(
        strides in prop::collection::vec(
            prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..60),
            1..8,
        ),
        queries in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64, 0.5..20.0f64), 1..10),
    ) {
        // Two trees fed the same random strides, one through the batched
        // mutations and one per point, must answer every ball query
        // identically and both stay structurally valid. Strides slide:
        // each round inserts the new stride and removes the previous one.
        let mut bulk: RTree<2> = RTree::new();
        let mut per: RTree<2> = RTree::new();
        let mut next_id = 0u64;
        let mut prev: Vec<(PointId, Point<2>)> = Vec::new();

        for stride in strides {
            let items: Vec<(PointId, Point<2>)> = stride
                .iter()
                .map(|&(x, y)| {
                    let id = PointId(next_id);
                    next_id += 1;
                    (id, Point::new([x, y]))
                })
                .collect();
            bulk.bulk_insert(items.clone());
            for (id, p) in &items {
                per.insert(*id, *p);
            }
            prop_assert_eq!(bulk.bulk_remove(&prev), prev.len());
            for (id, p) in &prev {
                prop_assert!(per.remove(*id, *p));
            }
            bulk.check_invariants();
            prop_assert_eq!(bulk.len(), per.len());
            prev = items;

            for &(x, y, eps) in &queries {
                let q = Point::new([x, y]);
                let mut got = bulk.ball_ids(&q, eps);
                got.sort();
                let mut want = per.ball_ids(&q, eps);
                want.sort();
                prop_assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn multi_center_traversal_matches_per_center_queries(
        points in prop::collection::vec((-30.0..30.0f64, -30.0..30.0f64), 1..150),
        centers in prop::collection::vec((-30.0..30.0f64, -30.0..30.0f64), 1..40),
        eps in 0.5..15.0f64,
    ) {
        let items: Vec<(PointId, Point<2>)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (PointId(i as u64), Point::new([x, y])))
            .collect();
        let mut tree = RTree::bulk_load(items.clone());
        let centers: Vec<Point<2>> = centers
            .iter()
            .map(|&(x, y)| Point::new([x, y]))
            .collect();
        let mut got: Vec<(usize, PointId)> = Vec::new();
        tree.for_each_in_balls(&centers, eps, |ci, id, _| got.push((ci, id)));
        got.sort();
        let mut want: Vec<(usize, PointId)> = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            tree.for_each_in_ball(c, eps, |id, _| want.push((ci, id)));
        }
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn epoch_probe_partitions_hits(
        points in prop::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 5..120),
        queries in prop::collection::vec((-20.0..20.0f64, -20.0..20.0f64, 1.0..15.0f64), 1..20),
    ) {
        let items: Vec<(PointId, Point<2>)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (PointId(i as u64), Point::new([x, y])))
            .collect();
        let mut tree = RTree::bulk_load(items.clone());
        let probe = tree.begin_epoch();
        let mut seen: std::collections::BTreeSet<PointId> = Default::default();
        let mut out = ProbeOutcome::default();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;

        // All probes from the same "thread": across the whole instance every
        // in-range point must be reported fresh exactly once, never foreign.
        for (x, y, eps) in queries {
            let q = Point::new([x, y]);
            out.clear();
            tree.epoch_probe(probe, &q, eps, 0, &mut resolve, &mut all, &mut out);
            prop_assert!(out.foreign.is_empty());
            let in_range: std::collections::BTreeSet<PointId> = items
                .iter()
                .filter(|(_, p)| q.within(p, eps))
                .map(|(id, _)| *id)
                .collect();
            let fresh: std::collections::BTreeSet<PointId> =
                out.fresh.iter().map(|(id, _)| *id).collect();
            // fresh == in_range minus already-seen
            let expected: std::collections::BTreeSet<PointId> =
                in_range.difference(&seen).copied().collect();
            prop_assert_eq!(&fresh, &expected);
            seen.extend(in_range);
        }
    }

    #[test]
    fn two_threads_cover_without_overlap(
        points in prop::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 10..100),
    ) {
        // Thread 0 probes the left half, thread 1 the right half, both with
        // balls big enough to overlap in the middle: fresh sets must be
        // disjoint and foreign hits must point at the other thread.
        let items: Vec<(PointId, Point<2>)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (PointId(i as u64), Point::new([x, y])))
            .collect();
        let mut tree = RTree::bulk_load(items.clone());
        let probe = tree.begin_epoch();
        let mut resolve = |o: u32| o;
        let mut all = |_: PointId| true;

        let mut out0 = ProbeOutcome::default();
        tree.epoch_probe(probe, &Point::new([-5.0, 0.0]), 25.0, 0, &mut resolve, &mut all, &mut out0);
        let mut out1 = ProbeOutcome::default();
        tree.epoch_probe(probe, &Point::new([5.0, 0.0]), 25.0, 1, &mut resolve, &mut all, &mut out1);

        let f0: std::collections::BTreeSet<PointId> = out0.fresh.iter().map(|(id, _)| *id).collect();
        let f1: std::collections::BTreeSet<PointId> = out1.fresh.iter().map(|(id, _)| *id).collect();
        prop_assert!(f0.is_disjoint(&f1));
        for (id, owner) in &out1.foreign {
            prop_assert_eq!(*owner, 0u32);
            prop_assert!(f0.contains(id));
        }
        // Every point of thread-1's ball is either fresh for 1 or foreign.
        let q1 = Point::new([5.0, 0.0]);
        for (id, p) in &items {
            if q1.within(p, 25.0) {
                let foreign_ids: Vec<PointId> = out1.foreign.iter().map(|(id, _)| *id).collect();
                prop_assert!(f1.contains(id) || foreign_ids.contains(id));
            }
        }
    }
}
